//! The three metric kinds and their lock-free cores.
//!
//! Handles are cheap clones of an `Arc`'d core (or of nothing — the
//! no-op form a disabled [`crate::Registry`] hands out). All updates use
//! relaxed atomics: metrics are monotone accumulators read at snapshot
//! time, not synchronization primitives.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Number of log₂ histogram buckets: bucket 0 holds the value `0`,
/// bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`, and bucket 64 tops
/// out at `u64::MAX` — every `u64` has a bucket, nothing wraps.
pub const BUCKETS: usize = 65;

/// Bucket index of a value: `0` for `0`, otherwise its bit length
/// (`64 - leading_zeros`). Total, branch-free, and overflow-safe:
/// `u64::MAX` maps to bucket 64.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    64 - value.leading_zeros() as usize
}

/// Inclusive upper bound of a bucket: `2^i - 1` for `i < 64`, saturating
/// to `u64::MAX` for the last bucket (where `2^64 - 1` *is* the bound —
/// computed without ever forming `2^64`).
#[inline]
pub fn bucket_upper_bound(index: usize) -> u64 {
    debug_assert!(index < BUCKETS);
    if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// Saturating atomic add: metric accumulators must degrade to a pinned
/// ceiling, never wrap back to small (and plausible-looking) values.
#[inline]
fn saturating_add(cell: &AtomicU64, v: u64) {
    if v == 0 {
        return;
    }
    // fetch_update never returns Err when the closure is total.
    let _ = cell.fetch_update(Relaxed, Relaxed, |cur| Some(cur.saturating_add(v)));
}

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
pub(crate) struct CounterCore {
    pub(crate) value: AtomicU64,
}

/// A monotone event counter. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    pub(crate) core: Option<Arc<CounterCore>>,
}

impl Counter {
    /// A counter that ignores every update — what a disabled registry
    /// hands out.
    pub fn noop() -> Counter {
        Counter { core: None }
    }

    /// False for the no-op form; hot paths may skip ancillary work
    /// (e.g. reading the clock) when their metrics are disabled.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n` (saturating at `u64::MAX`).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(core) = &self.core {
            saturating_add(&core.value, n);
        }
    }

    /// Current value (0 for the no-op form).
    pub fn get(&self) -> u64 {
        self.core.as_ref().map_or(0, |c| c.value.load(Relaxed))
    }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
pub(crate) struct GaugeCore {
    pub(crate) value: AtomicU64,
}

/// A settable level (queue depth, live workers, a 0/1 mode flag).
/// Decrements saturate at zero: a release crossing with a not-yet-seen
/// acquire must read as "empty", not as 2⁶⁴ − 1 in-flight items.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    pub(crate) core: Option<Arc<GaugeCore>>,
}

impl Gauge {
    /// A gauge that ignores every update.
    pub fn noop() -> Gauge {
        Gauge { core: None }
    }

    /// False for the no-op form.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Set the level outright.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(core) = &self.core {
            core.value.store(v, Relaxed);
        }
    }

    /// Raise by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Raise by `n` (saturating at `u64::MAX`).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(core) = &self.core {
            saturating_add(&core.value, n);
        }
    }

    /// Lower by one, saturating at zero.
    #[inline]
    pub fn dec(&self) {
        self.sub(1);
    }

    /// Lower by `n`, saturating at zero.
    #[inline]
    pub fn sub(&self, n: u64) {
        if n == 0 {
            return;
        }
        if let Some(core) = &self.core {
            let _ = core
                .value
                .fetch_update(Relaxed, Relaxed, |cur| Some(cur.saturating_sub(n)));
        }
    }

    /// Raise the level to `v` if it is higher than the current value — a
    /// high-watermark gauge (peak queue backlog, worst-case depth). Safe
    /// under concurrent writers: the stored value only ever grows.
    #[inline]
    pub fn record_max(&self, v: u64) {
        if let Some(core) = &self.core {
            core.value.fetch_max(v, Relaxed);
        }
    }

    /// Current level (0 for the no-op form).
    pub fn get(&self) -> u64 {
        self.core.as_ref().map_or(0, |c| c.value.load(Relaxed))
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

#[derive(Debug)]
pub(crate) struct HistogramCore {
    pub(crate) buckets: [AtomicU64; BUCKETS],
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket log₂ histogram over `u64` values. `record` is
/// allocation-free (three relaxed atomic adds); the bucket layout is
/// identical in every histogram, so per-shard histograms merge by plain
/// bucket-wise addition ([`HistogramSnapshot::merge`]).
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    pub(crate) core: Option<Arc<HistogramCore>>,
}

impl Histogram {
    /// A histogram that ignores every update.
    pub fn noop() -> Histogram {
        Histogram { core: None }
    }

    /// False for the no-op form.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(core) = &self.core {
            core.buckets[bucket_index(value)].fetch_add(1, Relaxed);
            core.count.fetch_add(1, Relaxed);
            saturating_add(&core.sum, value);
        }
    }

    /// Record a duration in whole nanoseconds (saturating: a duration
    /// beyond ~584 years records as `u64::MAX` instead of truncating).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Fold a pre-aggregated snapshot in — how a worker's thread-local
    /// histogram lands in the shared registry without per-record atomics.
    pub fn merge_snapshot(&self, snap: &HistogramSnapshot) {
        if let Some(core) = &self.core {
            for (cell, &n) in core.buckets.iter().zip(&snap.buckets) {
                saturating_add(cell, n);
            }
            saturating_add(&core.count, snap.count);
            saturating_add(&core.sum, snap.sum);
        }
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.core.as_ref().map_or(0, |c| c.count.load(Relaxed))
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.core.as_ref().map_or(0, |c| c.sum.load(Relaxed))
    }

    /// Freeze into a plain (mergeable, serializable) snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        match &self.core {
            None => HistogramSnapshot::new(),
            Some(core) => HistogramSnapshot {
                count: core.count.load(Relaxed),
                sum: core.sum.load(Relaxed),
                buckets: core.buckets.iter().map(|b| b.load(Relaxed)).collect(),
            },
        }
    }
}

/// A frozen histogram: plain counts, mergeable and serializable.
///
/// `merge` is associative, commutative, and count-preserving (saturating
/// addition is associative over `u64`), so any shard split of a record
/// stream folds back to the same aggregate — the property
/// `tests/properties.rs` pins alongside the loser-tree determinism suite.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// Per-bucket counts, `BUCKETS` entries (see [`bucket_index`]).
    pub buckets: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot::new()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn new() -> HistogramSnapshot {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: vec![0; BUCKETS],
        }
    }

    /// Record one observation (the non-atomic twin of
    /// [`Histogram::record`], for thread-local accumulation).
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] = self.buckets[bucket_index(value)].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
    }

    /// Fold `other` in: bucket-wise saturating addition.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        // A foreign snapshot may carry fewer buckets (never more — the
        // layout is fixed); missing trailing buckets merge as zero.
        for (mine, &theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine = mine.saturating_add(theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean recorded value, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0 ≤ q ≤ 1`), `None` when empty. A log₂ histogram answers
    /// "p99 ≤ 2ᵏ", which is the right precision for stage telemetry.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(n);
            if cumulative >= rank {
                return Some(bucket_upper_bound(i));
            }
        }
        Some(u64::MAX)
    }

    /// Point estimate of the `q`-quantile (`0 ≤ q ≤ 1`), `None` when
    /// empty.
    ///
    /// [`Self::quantile_upper_bound`] answers with the whole bucket's
    /// ceiling, overstating by up to 2× for values near a bucket's
    /// floor. This estimator interpolates *inside* the bucket on the
    /// log scale (the scale the buckets are uniform on): the quantile's
    /// fractional rank within bucket `i ≥ 1` maps geometrically across
    /// `[2^(i-1), 2^i)`. The estimate always lies within the bucket
    /// bounds that contain the true order statistic, so
    /// `floor ≤ est ≤ quantile_upper_bound`.
    pub fn quantile_est(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut before = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            let cumulative = before.saturating_add(n);
            if cumulative >= rank && n > 0 {
                if i == 0 {
                    return Some(0.0); // bucket 0 holds exactly the value 0
                }
                let lo = (1u64 << (i - 1)) as f64; // bucket floor, 2^(i-1)
                let hi = bucket_upper_bound(i) as f64;
                // Fractional position of the rank inside this bucket,
                // mid-point convention so a single observation estimates
                // the bucket's geometric middle rather than either edge.
                let frac = ((rank - before) as f64 - 0.5) / n as f64;
                return Some((lo * frac.exp2()).clamp(lo, hi));
            }
            before = cumulative;
        }
        Some(bucket_upper_bound(BUCKETS - 1) as f64)
    }

    /// The per-window delta `self − prev`: bucket-wise saturating
    /// subtraction, for turning two cumulative snapshots into the
    /// distribution of observations recorded *between* them. With
    /// `prev` an earlier snapshot of the same histogram the result is
    /// exact (cumulative buckets are monotone); saturation only engages
    /// on mismatched inputs and degrades to zeros instead of wrapping.
    pub fn delta_since(&self, prev: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::new();
        for (i, slot) in out.buckets.iter_mut().enumerate() {
            let cur = self.buckets.get(i).copied().unwrap_or(0);
            let old = prev.buckets.get(i).copied().unwrap_or(0);
            *slot = cur.saturating_sub(old);
        }
        out.count = self.count.saturating_sub(prev.count);
        out.sum = self.sum.saturating_sub(prev.sum);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_the_whole_u64_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index((1 << 20) - 1), 20);
        assert_eq!(bucket_index(1 << 20), 21);
        assert_eq!(bucket_index(1 << 63), 64);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert!(bucket_index(u64::MAX) < BUCKETS, "MAX must not overflow");
    }

    #[test]
    fn bucket_bounds_are_inclusive_and_overflow_safe() {
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(63), (1u64 << 63) - 1);
        // The last bucket's bound is u64::MAX itself — 2^64 is never formed.
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        // Every value is ≤ its own bucket's bound and > the previous one's.
        for v in [0u64, 1, 2, 3, 7, 8, 1000, 1 << 40, u64::MAX - 1, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i), "{v} above its bucket bound");
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1), "{v} below its bucket");
            }
        }
    }

    #[test]
    fn histogram_swallows_u64_max_without_wrapping() {
        let h = crate::Registry::new().histogram("cn_test_extreme");
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(0);
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum, u64::MAX, "sum saturates, never wraps");
        assert_eq!(snap.buckets[64], 2);
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.quantile_upper_bound(1.0), Some(u64::MAX));
    }

    #[test]
    fn gauge_decrement_below_zero_saturates() {
        let g = crate::Registry::new().gauge("cn_test_gauge");
        g.inc();
        g.sub(100);
        assert_eq!(g.get(), 0, "gauge must floor at zero, not wrap");
        g.dec();
        assert_eq!(g.get(), 0);
        g.set(5);
        g.sub(2);
        assert_eq!(g.get(), 3);
        g.add(u64::MAX);
        assert_eq!(g.get(), u64::MAX, "gauge increments saturate at the top");
    }

    #[test]
    fn gauge_record_max_is_a_high_watermark() {
        let g = crate::Registry::new().gauge("cn_test_watermark");
        g.record_max(7);
        assert_eq!(g.get(), 7);
        g.record_max(3);
        assert_eq!(g.get(), 7, "a lower sample must not regress the peak");
        g.record_max(9);
        assert_eq!(g.get(), 9);
        // The no-op form stays inert.
        let noop = Gauge::noop();
        noop.record_max(42);
        assert_eq!(noop.get(), 0);
    }

    #[test]
    fn counter_saturates_at_the_ceiling() {
        let c = crate::Registry::new().counter("cn_test_counter_total");
        c.add(u64::MAX - 1);
        c.add(5);
        assert_eq!(c.get(), u64::MAX);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn noop_handles_ignore_everything() {
        let c = Counter::noop();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        assert!(!c.is_enabled());
        let g = Gauge::noop();
        g.set(7);
        g.inc();
        assert_eq!(g.get(), 0);
        let h = Histogram::noop();
        h.record(42);
        assert_eq!(h.count(), 0);
        assert!(h.snapshot().is_empty());
    }

    #[test]
    fn snapshot_quantiles_bound_the_data() {
        let mut s = HistogramSnapshot::new();
        for v in [1u64, 2, 3, 4, 100, 1000] {
            s.record(v);
        }
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1110);
        let p50 = s.quantile_upper_bound(0.5).unwrap();
        assert!((3..=3).contains(&p50), "p50 bound {p50}");
        let p100 = s.quantile_upper_bound(1.0).unwrap();
        assert!(p100 >= 1000, "max bound {p100}");
        assert!((s.mean().unwrap() - 185.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_est_pins_known_distributions() {
        // Uniform over one bucket: 1024 values filling [512, 1024)
        // (bucket 10). The estimator must spread estimates across the
        // bucket instead of answering 1023 for every quantile.
        let mut s = HistogramSnapshot::new();
        for v in 512u64..1024 {
            s.record(v);
            s.record(v);
        }
        let p01 = s.quantile_est(0.01).unwrap();
        let p50 = s.quantile_est(0.50).unwrap();
        let p99 = s.quantile_est(0.99).unwrap();
        assert!(p01 < p50 && p50 < p99, "{p01} {p50} {p99}");
        assert!((512.0..600.0).contains(&p01), "p01 near the floor: {p01}");
        // Geometric mid of [512, 1024) is 512·√2 ≈ 724.
        assert!((650.0..800.0).contains(&p50), "p50 near geo-mid: {p50}");
        assert!((950.0..=1023.0).contains(&p99), "p99 near the top: {p99}");
        // The coarse bound answers 1023 for all three.
        assert_eq!(s.quantile_upper_bound(0.5), Some(1023));

        // Two-point distribution: 99 ones and one value of 1000 —
        // p50 must sit on the low mode, p100 inside 1000's bucket.
        let mut s = HistogramSnapshot::new();
        for _ in 0..99 {
            s.record(1);
        }
        s.record(1000);
        assert_eq!(s.quantile_est(0.5), Some(1.0));
        let p100 = s.quantile_est(1.0).unwrap();
        assert!((512.0..=1023.0).contains(&p100), "p100 {p100}");

        // All zeros → exactly 0; empty → None.
        let mut z = HistogramSnapshot::new();
        z.record(0);
        assert_eq!(z.quantile_est(0.99), Some(0.0));
        assert_eq!(HistogramSnapshot::new().quantile_est(0.5), None);

        // The estimate never exceeds the coarse upper bound and never
        // undershoots the containing bucket's floor.
        let mut s = HistogramSnapshot::new();
        for v in [1u64, 3, 7, 9, 100, 5000, 70_000] {
            s.record(v);
        }
        for q in [0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let est = s.quantile_est(q).unwrap();
            let ub = s.quantile_upper_bound(q).unwrap() as f64;
            assert!(est <= ub, "q={q}: est {est} above bound {ub}");
            assert!(est >= 0.0 && est.is_finite());
        }
    }

    #[test]
    fn delta_since_recovers_the_window() {
        let mut early = HistogramSnapshot::new();
        for v in [1u64, 8, 8, 300] {
            early.record(v);
        }
        let mut late = early.clone();
        for v in [2u64, 8, 4000] {
            late.record(v);
        }
        let window = late.delta_since(&early);
        assert_eq!(window.count, 3);
        assert_eq!(window.sum, 2 + 8 + 4000);
        let mut expect = HistogramSnapshot::new();
        for v in [2u64, 8, 4000] {
            expect.record(v);
        }
        assert_eq!(window, expect, "delta must be the in-between records");
        // Self-delta is empty; mismatched inputs saturate to zero.
        assert!(late.delta_since(&late).is_empty());
        assert!(early.delta_since(&late).is_empty());
    }

    #[test]
    fn merge_snapshot_folds_into_a_live_histogram() {
        let registry = crate::Registry::new();
        let h = registry.histogram("cn_test_merge");
        h.record(8);
        let mut local = HistogramSnapshot::new();
        local.record(8);
        local.record(9);
        h.merge_snapshot(&local);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 25);
        assert_eq!(h.snapshot().buckets[bucket_index(8)], 3);
    }
}
