//! Coarse stage timing.
//!
//! A [`Span`] is a scope guard that records its lifetime, in
//! nanoseconds, into a histogram on drop (or explicitly via
//! [`Span::finish`]). It is for *stages* — fitting, a golden run, a
//! round trip — not per-record work: the clock read costs far more than
//! a counter bump, which is exactly why per-record paths use counters
//! and histograms directly.
//!
//! ```
//! let registry = cn_obs::Registry::new();
//! {
//!     let _span = cn_obs::span!(registry, "cn_verify_golden_ns");
//!     // ... stage body ...
//! } // records here
//! assert_eq!(registry.snapshot().histogram("cn_verify_golden_ns").unwrap().count, 1);
//! ```

use crate::metric::Histogram;
use crate::registry::Registry;
use crate::trace::{TraceSink, TraceSpan};
use std::time::Instant;

/// A running stage timer; see the module docs.
#[derive(Debug)]
pub struct Span {
    hist: Histogram,
    start: Option<Instant>,
    trace: Option<TraceSpan>,
}

impl Span {
    /// Start timing into the histogram `name`. Against a disabled
    /// registry this never reads the clock and drop records nothing.
    pub fn start(registry: &Registry, name: &str) -> Span {
        if registry.is_enabled() {
            Span {
                hist: registry.histogram(name),
                start: Some(Instant::now()),
                trace: None,
            }
        } else {
            Span {
                hist: Histogram::noop(),
                start: None,
                trace: None,
            }
        }
    }

    /// The traced form: in addition to the histogram, open a
    /// [`TraceSpan`] on `sink`, parented to whatever span is currently
    /// open on this thread — nested `start_traced` calls *are* the
    /// child form, producing the span tree [`TraceSink::to_chrome_json`]
    /// exports. Either side may be disabled independently: a disabled
    /// registry still traces, a disabled sink still feeds the
    /// histogram, both disabled reads no clock at all.
    pub fn start_traced(registry: &Registry, name: &str, sink: &TraceSink) -> Span {
        let trace = sink.is_enabled().then(|| sink.span(name));
        let timed = registry.is_enabled() || trace.is_some();
        Span {
            hist: if registry.is_enabled() {
                registry.histogram(name)
            } else {
                Histogram::noop()
            },
            start: timed.then(Instant::now),
            trace,
        }
    }

    /// Nanoseconds since the span started (0 when disabled).
    pub fn elapsed_ns(&self) -> u64 {
        self.start.map_or(0, |t0| {
            u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
    }

    /// Stop now, record, and return the elapsed nanoseconds.
    pub fn finish(mut self) -> u64 {
        self.record_once()
    }

    fn record_once(&mut self) -> u64 {
        drop(self.trace.take()); // closes the trace event, if any
        match self.start.take() {
            None => 0,
            Some(t0) => {
                let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                self.hist.record(ns);
                ns
            }
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record_once();
    }
}

/// Start a [`Span`] recording into histogram `$name` of `$registry`.
///
/// The three-argument form also opens a trace span on `$sink`
/// (a [`TraceSink`]), parented to the span currently open on this
/// thread — nesting these *is* the child form of the span tree.
#[macro_export]
macro_rules! span {
    ($registry:expr, $name:expr) => {
        $crate::Span::start(&$registry, $name)
    };
    ($registry:expr, $name:expr, $sink:expr) => {
        $crate::Span::start_traced(&$registry, $name, &$sink)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_once_on_drop() {
        let registry = Registry::new();
        {
            let _span = crate::span!(registry, "cn_test_stage_ns");
        }
        let snap = registry.snapshot();
        assert_eq!(snap.histogram("cn_test_stage_ns").unwrap().count, 1);
    }

    #[test]
    fn finish_records_and_prevents_double_count() {
        let registry = Registry::new();
        let span = Span::start(&registry, "cn_test_finish_ns");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let ns = span.finish(); // drop after finish must not record again
        assert!(ns >= 1_000_000, "slept 2ms but recorded {ns}ns");
        let hist = registry.snapshot();
        let hist = hist.histogram("cn_test_finish_ns").unwrap();
        assert_eq!(hist.count, 1);
        assert!(hist.sum >= 1_000_000);
    }

    #[test]
    fn disabled_registry_spans_are_free() {
        let registry = Registry::disabled();
        let span = crate::span!(registry, "cn_test_noop_ns");
        assert_eq!(span.elapsed_ns(), 0);
        assert_eq!(span.finish(), 0);
        assert!(registry.snapshot().metrics.is_empty());
    }

    #[test]
    fn traced_spans_feed_both_the_histogram_and_the_tree() {
        let registry = Registry::new();
        let sink = TraceSink::new();
        {
            let _outer = crate::span!(registry, "cn_test_outer_ns", sink);
            let _inner = crate::span!(registry, "cn_test_inner_ns", sink);
        }
        let snap = registry.snapshot();
        assert_eq!(snap.histogram("cn_test_outer_ns").unwrap().count, 1);
        assert_eq!(snap.histogram("cn_test_inner_ns").unwrap().count, 1);
        let events = sink.events();
        assert_eq!(events.len(), 2);
        // Inner closes first and is parented to outer: the child form.
        assert_eq!(events[0].name, "cn_test_inner_ns");
        assert_eq!(events[0].parent, Some(events[1].id));

        // Disabled sink: histogram still records, no trace events.
        let quiet = TraceSink::disabled();
        {
            let _span = crate::span!(registry, "cn_test_outer_ns", quiet);
        }
        assert!(quiet.is_empty());
        assert_eq!(
            registry
                .snapshot()
                .histogram("cn_test_outer_ns")
                .unwrap()
                .count,
            2
        );

        // Disabled registry: trace still records.
        let off = Registry::disabled();
        {
            let _span = crate::span!(off, "cn_test_ghost_ns", sink);
        }
        assert_eq!(sink.len(), 3);
        assert!(off.snapshot().metrics.is_empty());
    }

    #[test]
    fn two_spans_accumulate_in_one_histogram() {
        let registry = Registry::new();
        for _ in 0..2 {
            let _span = crate::span!(registry, "cn_test_loop_ns");
        }
        let snap = registry.snapshot();
        assert_eq!(snap.histogram("cn_test_loop_ns").unwrap().count, 2);
    }
}
