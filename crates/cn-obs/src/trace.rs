//! Structured stage tracing: a parent-linked span tree per process,
//! exported as Chrome trace-event JSON that Perfetto (or
//! `chrome://tracing`) opens directly.
//!
//! [`crate::Span`] answers "how long does this stage take, statistically"
//! — it folds durations into a histogram and forgets *when* each one ran.
//! A [`TraceSink`] keeps the *when*: every [`TraceSpan`] becomes one
//! timestamped complete event (`ph: "X"`) with its thread, its
//! process-unique [`SpanId`], and the id of the span that was open on the
//! same thread when it started. One serve run therefore produces an
//! openable timeline — shard workers draining side by side, out-of-core
//! chunk/spill/merge phases, scenario injection windows, the live pacer's
//! long sleeps — instead of a pile of aggregate numbers.
//!
//! ### Model
//!
//! * Span ids come from one process-wide atomic counter, so ids are
//!   unique across sinks and threads.
//! * Parent linkage is implicit: each thread keeps a stack of the spans
//!   currently open on it, and a new span's parent is the top of that
//!   stack. Opening a span inside another *is* the child form — see
//!   [`crate::span!`]'s three-argument variant.
//! * The sink is bounded ([`TraceSink::with_capacity`]): past the cap,
//!   events are counted in [`TraceSink::dropped`] instead of stored.
//!   A forensic timeline that silently ate the interesting tail would be
//!   worse than none; the drop count makes truncation visible.
//! * A **disabled** sink ([`TraceSink::disabled`]) never reads the clock
//!   and never touches the thread-local stack — instrumented code costs
//!   one branch when tracing is off, matching the registry contract.
//!
//! ### The process-global sink
//!
//! Pipeline internals (shard workers, the out-of-core exporter, scenario
//! injection) cannot reasonably thread a `&TraceSink` through every
//! signature, so a process-global sink can be installed
//! ([`install_global`]) and cheap-checked ([`global`] — one relaxed
//! atomic load when none is installed). Construction-time code grabs the
//! global **once** and stores the clone; hot paths never re-resolve it.
//!
//! Timelines are for humans: CI uploads them as artifacts and checks that
//! they parse, but never gates byte-exact contents (timestamps are
//! real-clock values and legitimately differ run to run).

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default bound on stored events (~100k spans ≈ a few tens of MB of
/// JSON — enough for hours of stage-granularity tracing).
const DEFAULT_EVENT_CAP: usize = 100_000;

/// Process-wide span id source (ids unique across sinks and threads; 0
/// is never issued, so `parent: 0` cannot collide with a real span).
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Process-wide thread-number source for stable, compact `tid`s.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Ids of the spans currently open on this thread, innermost last.
    static OPEN_SPANS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// This thread's compact trace tid (assigned on first span).
    static TRACE_TID: RefCell<Option<u64>> = const { RefCell::new(None) };
}

fn current_tid() -> u64 {
    TRACE_TID.with(|t| {
        *t.borrow_mut()
            .get_or_insert_with(|| NEXT_TID.fetch_add(1, Relaxed))
    })
}

/// A process-unique identifier of one recorded span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SpanId(pub u64);

/// One finished span: a complete (`ph: "X"`) Chrome trace event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Stage name (same naming scheme as metrics, minus unit suffixes).
    pub name: String,
    /// Compact per-thread id (assignment order of first span per thread).
    pub tid: u64,
    /// Start, microseconds since the sink's origin.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// This span's id.
    pub id: u64,
    /// The id of the span open on the same thread when this one started.
    pub parent: Option<u64>,
}

struct SinkInner {
    origin: Instant,
    events: Mutex<Vec<TraceEvent>>,
    dropped: AtomicU64,
    cap: usize,
}

/// A bounded collector of [`TraceEvent`]s; see the module docs. Clones
/// share the same store.
#[derive(Clone, Default)]
pub struct TraceSink {
    inner: Option<Arc<SinkInner>>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "TraceSink(disabled)"),
            Some(i) => write!(f, "TraceSink({} events)", i.events.lock().unwrap().len()),
        }
    }
}

impl TraceSink {
    /// An enabled sink with the default event cap.
    pub fn new() -> TraceSink {
        TraceSink::with_capacity(DEFAULT_EVENT_CAP)
    }

    /// An enabled sink storing at most `cap` events (further spans are
    /// counted in [`TraceSink::dropped`], not stored).
    pub fn with_capacity(cap: usize) -> TraceSink {
        TraceSink {
            inner: Some(Arc::new(SinkInner {
                origin: Instant::now(),
                events: Mutex::new(Vec::new()),
                dropped: AtomicU64::new(0),
                cap: cap.max(1),
            })),
        }
    }

    /// The no-op sink: spans against it read no clock and record nothing.
    pub fn disabled() -> TraceSink {
        TraceSink { inner: None }
    }

    /// False for [`TraceSink::disabled`].
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span named `name`, parented to whatever span is currently
    /// open on this thread. Dropping (or [`TraceSpan::finish`]ing) the
    /// guard records the event.
    pub fn span(&self, name: &str) -> TraceSpan {
        let Some(inner) = &self.inner else {
            return TraceSpan {
                inner: None,
                name: String::new(),
                id: 0,
                parent: None,
                start_us: 0,
            };
        };
        let id = NEXT_SPAN_ID.fetch_add(1, Relaxed);
        let parent = OPEN_SPANS.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied();
            s.push(id);
            parent
        });
        TraceSpan {
            inner: Some(Arc::clone(inner)),
            name: name.to_string(),
            id,
            parent,
            start_us: elapsed_us(inner.origin),
        }
    }

    /// Events recorded so far (cloned; ordering is completion order).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.events.lock().unwrap().clone())
    }

    /// Number of stored events.
    pub fn len(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |i| i.events.lock().unwrap().len())
    }

    /// True when no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans lost to the event cap.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.dropped.load(Relaxed))
    }

    /// Render the Chrome trace-event JSON object (`{"traceEvents":
    /// [...]}`) Perfetto and `chrome://tracing` load directly. Parent
    /// links ride in each event's `args`.
    pub fn to_chrome_json(&self) -> String {
        let pid = std::process::id();
        let mut out = String::from("{\"traceEvents\":[");
        for (i, e) in self.events().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let parent = e.parent.map_or("null".to_string(), |p| p.to_string());
            out.push_str(&format!(
                "{{\"name\":{},\"cat\":\"cn\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{},\
                 \"ts\":{},\"dur\":{},\"args\":{{\"id\":{},\"parent\":{parent}}}}}",
                json_string(&e.name),
                e.tid,
                e.ts_us,
                e.dur_us,
                e.id
            ));
        }
        out.push_str("]}");
        out
    }

    fn record(&self, event: TraceEvent) {
        if let Some(inner) = &self.inner {
            let mut events = inner.events.lock().unwrap();
            if events.len() < inner.cap {
                events.push(event);
            } else {
                inner.dropped.fetch_add(1, Relaxed);
            }
        }
    }
}

fn elapsed_us(origin: Instant) -> u64 {
    u64::try_from(origin.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Minimal JSON string escaping for span names (control chars, quotes,
/// backslashes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// An open span; records its [`TraceEvent`] on drop or
/// [`TraceSpan::finish`]. Must be dropped on the thread that opened it
/// (the guard is intentionally not `Send` — parenting is per-thread).
pub struct TraceSpan {
    inner: Option<Arc<SinkInner>>,
    name: String,
    id: u64,
    parent: Option<u64>,
    start_us: u64,
}

impl std::fmt::Debug for TraceSpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSpan")
            .field("name", &self.name)
            .field("id", &self.id)
            .field("parent", &self.parent)
            .finish_non_exhaustive()
    }
}

impl TraceSpan {
    /// This span's id ([`SpanId(0)`](SpanId) for a disabled-sink span).
    pub fn id(&self) -> SpanId {
        SpanId(self.id)
    }

    /// The parent span's id, if one was open at start.
    pub fn parent(&self) -> Option<SpanId> {
        self.parent.map(SpanId)
    }

    /// Close now and return the recorded duration in microseconds.
    pub fn finish(mut self) -> u64 {
        self.close()
    }

    fn close(&mut self) -> u64 {
        let Some(inner) = self.inner.take() else {
            return 0;
        };
        // Pop this span off the thread's open stack. Out-of-order drops
        // (a guard outliving its parent) are tolerated: remove by id.
        OPEN_SPANS.with(|s| {
            let mut s = s.borrow_mut();
            if s.last() == Some(&self.id) {
                s.pop();
            } else if let Some(i) = s.iter().rposition(|&x| x == self.id) {
                s.remove(i);
            }
        });
        let end_us = elapsed_us(inner.origin);
        let dur_us = end_us.saturating_sub(self.start_us);
        let event = TraceEvent {
            name: std::mem::take(&mut self.name),
            tid: current_tid(),
            ts_us: self.start_us,
            dur_us,
            id: self.id,
            parent: self.parent,
        };
        TraceSink { inner: Some(inner) }.record(event);
        dur_us
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        self.close();
    }
}

// ---------------------------------------------------------------------------
// The process-global sink
// ---------------------------------------------------------------------------

static GLOBAL_ON: AtomicBool = AtomicBool::new(false);
static GLOBAL: Mutex<Option<TraceSink>> = Mutex::new(None);

/// Install `sink` as the process-global trace sink (replacing any
/// previous one). Pipeline constructors resolve it via [`global`].
pub fn install_global(sink: &TraceSink) {
    let mut g = GLOBAL.lock().unwrap();
    *g = Some(sink.clone());
    GLOBAL_ON.store(sink.is_enabled(), Relaxed);
}

/// Remove the process-global sink (subsequent [`global`] calls return
/// the disabled sink). Returns the previously installed sink.
pub fn clear_global() -> Option<TraceSink> {
    let mut g = GLOBAL.lock().unwrap();
    GLOBAL_ON.store(false, Relaxed);
    g.take()
}

/// The process-global sink, or the disabled sink when none is installed.
/// One relaxed atomic load on the none path — cheap enough for
/// construction-time resolution (store the clone; don't re-resolve per
/// record).
pub fn global() -> TraceSink {
    if !GLOBAL_ON.load(Relaxed) {
        return TraceSink::disabled();
    }
    GLOBAL.lock().unwrap().clone().unwrap_or_default()
}

/// Open a span on the process-global sink (no-op when none installed).
pub fn global_span(name: &str) -> TraceSpan {
    global().span(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_into_a_parent_linked_tree() {
        let sink = TraceSink::new();
        let root = sink.span("root");
        let root_id = root.id();
        {
            let child = sink.span("child");
            assert_eq!(child.parent(), Some(root_id));
            let grandchild = sink.span("grandchild");
            assert_eq!(grandchild.parent(), Some(child.id()));
        }
        drop(root);
        let events = sink.events();
        assert_eq!(events.len(), 3);
        // Completion order: grandchild, child, root.
        assert_eq!(events[0].name, "grandchild");
        assert_eq!(events[2].name, "root");
        assert_eq!(events[2].parent, None);
        assert_eq!(events[1].parent, Some(root_id.0));
        // All on one thread.
        assert!(events.iter().all(|e| e.tid == events[0].tid));
        // Children are contained in the root's interval.
        let root_ev = &events[2];
        for e in &events[..2] {
            assert!(e.ts_us >= root_ev.ts_us);
            assert!(e.ts_us + e.dur_us <= root_ev.ts_us + root_ev.dur_us + 1);
        }
    }

    #[test]
    fn sibling_threads_get_distinct_tids_and_no_cross_parenting() {
        let sink = TraceSink::new();
        let root = sink.span("main-root");
        let s2 = sink.clone();
        let worker = std::thread::spawn(move || {
            let span = s2.span("worker");
            // A fresh thread has no open span: no parent, even though
            // "main-root" is open on the spawning thread.
            assert_eq!(span.parent(), None);
        });
        worker.join().unwrap();
        drop(root);
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_ne!(events[0].tid, events[1].tid);
    }

    #[test]
    fn disabled_sink_records_nothing_and_keeps_the_stack_clean() {
        let sink = TraceSink::disabled();
        {
            let _a = sink.span("a");
            // The thread-local stack must not grow for disabled spans, or
            // a later enabled span would parent onto a ghost.
            let live = TraceSink::new();
            let b = live.span("b");
            assert_eq!(b.parent(), None);
        }
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn event_cap_counts_drops_instead_of_growing() {
        let sink = TraceSink::with_capacity(2);
        for i in 0..5 {
            let _s = sink.span(&format!("s{i}"));
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 3);
    }

    #[test]
    fn chrome_json_is_loadable_shape() {
        let sink = TraceSink::new();
        {
            let _root = sink.span("stage \"x\"\n");
        }
        let json = sink.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\\\"x\\\"\\n"), "{json}");
        // Must be valid JSON by our own parser.
        let v: serde_json::JsonValue = serde_json::from_str(&json).expect("chrome json parses");
        let events = match &v {
            serde_json::JsonValue::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == "traceEvents")
                .map(|(_, v)| v)
                .expect("traceEvents key"),
            other => panic!("not an object: {other:?}"),
        };
        assert!(matches!(events, serde_json::JsonValue::Arr(a) if a.len() == 1));
    }

    #[test]
    fn finish_returns_duration_and_records_once() {
        let sink = TraceSink::new();
        let span = sink.span("timed");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let dur = span.finish();
        assert!(dur >= 1_000, "slept 2ms but recorded {dur}us");
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn global_install_and_clear() {
        // Serialize against other tests touching the global via the lock
        // on GLOBAL itself being per-call; use a dedicated sink.
        let sink = TraceSink::new();
        install_global(&sink);
        {
            let _s = global_span("via-global");
        }
        let taken = clear_global().expect("was installed");
        assert_eq!(taken.len(), 1);
        assert!(!global().is_enabled());
        {
            let _s = global_span("after-clear");
        }
        assert_eq!(sink.len(), 1, "cleared global must not record");
    }
}
