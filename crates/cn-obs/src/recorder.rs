//! The flight recorder: time-resolved telemetry with crash forensics.
//!
//! A cumulative [`ObsSnapshot`] answers "what happened since start";
//! an operator watching a multi-hour serve needs "what is happening
//! *now*". [`FlightRecorder::start`] spawns a background sampler thread
//! that snapshots a [`Registry`] every `interval` into a bounded ring
//! of [`RecorderFrame`]s, each carrying the cumulative snapshot **and**
//! the per-window view derived from the previous frame: counter rates
//! in events/s and histogram deltas (so a lag p99 is *this window's*
//! p99, not the run-average that a cumulative histogram converges to).
//!
//! The ring is the last ~minute of history (240 frames × 250 ms by
//! default); [`FlightRecorder::dump_forensics`] writes the whole ring
//! plus a final fresh snapshot as one JSON document — `cn-live` calls
//! it from its failure paths, and [`FlightRecorder::install_panic_hook`]
//! chains it onto the process panic hook so even a crash leaves the
//! last minute of telemetry on disk.
//!
//! Optionally every frame is also appended to a JSONL file (one compact
//! frame per line) with size-bounded rotation: when the file would
//! exceed `jsonl_max_bytes` it is renamed to `<path>.1` (replacing any
//! previous `.1`) and a fresh file is started — at most two files, ~2×
//! the budget, ever on disk.
//!
//! The recorder only ever *reads* the registry (snapshots are relaxed
//! atomic loads on the sampler thread) — it never sits on a hot path,
//! which is what keeps the bench gate honest.
//!
//! [`validate_frames`] / [`validate_jsonl`] / [`validate_forensics`]
//! are the invariant checks `obs_check` runs in CI: frames parse,
//! sequence numbers and timestamps strictly increase, cumulative
//! counter series are monotone non-decreasing, window rates are finite
//! and non-negative.

use crate::export::{MetricValue, ObsSnapshot};
use crate::metric::HistogramSnapshot;
use crate::registry::Registry;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Sampler tuning. Defaults give a ~60 s ring at 4 Hz.
#[derive(Debug, Clone)]
pub struct RecorderConfig {
    /// Sampling period of the background thread.
    pub interval: Duration,
    /// Ring capacity in frames (oldest evicted first). Must be ≥ 1.
    pub ring_frames: usize,
    /// Append every frame as one JSONL line here (`None` = ring only).
    pub jsonl_path: Option<PathBuf>,
    /// Rotate the JSONL file when it would exceed this many bytes.
    pub jsonl_max_bytes: u64,
}

impl Default for RecorderConfig {
    fn default() -> RecorderConfig {
        RecorderConfig {
            interval: Duration::from_millis(250),
            ring_frames: 240,
            jsonl_path: None,
            jsonl_max_bytes: 8 * 1024 * 1024,
        }
    }
}

/// One counter's rate over the frame's window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateSample {
    /// Counter name.
    pub name: String,
    /// Label pairs, sorted by key (registry order).
    pub labels: Vec<(String, String)>,
    /// Events per second over `window_ms` (finite, ≥ 0 by construction).
    pub per_s: f64,
}

/// One histogram's observations recorded during the frame's window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramWindowSample {
    /// Histogram name.
    pub name: String,
    /// Label pairs, sorted by key (registry order).
    pub labels: Vec<(String, String)>,
    /// The window's own distribution (cumulative delta vs. the previous
    /// frame) — quantiles of *this* window, not since-start.
    pub delta: HistogramSnapshot,
}

/// The per-window view of one frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowStats {
    /// Every counter's rate this window.
    pub rates: Vec<RateSample>,
    /// Every histogram's window delta (empty deltas elided).
    pub histograms: Vec<HistogramWindowSample>,
}

/// One sampled frame: cumulative state plus the window since the
/// previous frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecorderFrame {
    /// Strictly increasing frame number (0-based, counts evicted
    /// frames too — a ring gap is visible as a seq jump).
    pub seq: u64,
    /// Milliseconds since the recorder started; strictly increasing
    /// across frames by construction.
    pub t_ms: u64,
    /// Width of this frame's window (`t_ms - prev.t_ms`, ≥ 1).
    pub window_ms: u64,
    /// Cumulative registry snapshot at `t_ms`.
    pub snapshot: ObsSnapshot,
    /// Rates and deltas over the window.
    pub window: WindowStats,
}

/// What [`FlightRecorder::dump_forensics`] writes: the ring, then one
/// final snapshot taken at dump time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForensicsDump {
    /// The ring, oldest first.
    pub frames: Vec<RecorderFrame>,
    /// A fresh cumulative snapshot taken at dump time (the terminal
    /// state, even if the last frame is up to one interval old).
    pub last: ObsSnapshot,
}

struct JsonlSink {
    path: PathBuf,
    file: std::fs::File,
    bytes: u64,
    max_bytes: u64,
}

impl JsonlSink {
    fn open(path: &Path, max_bytes: u64) -> std::io::Result<JsonlSink> {
        Ok(JsonlSink {
            file: std::fs::File::create(path)?,
            path: path.to_path_buf(),
            bytes: 0,
            max_bytes: max_bytes.max(1),
        })
    }

    fn append(&mut self, line: &str) -> std::io::Result<()> {
        let len = line.len() as u64 + 1;
        if self.bytes > 0 && self.bytes + len > self.max_bytes {
            // Size-bounded rotation: current file becomes `<path>.1`
            // (replacing any previous rotation), then start fresh.
            self.file.flush()?;
            let mut rotated = self.path.clone().into_os_string();
            rotated.push(".1");
            std::fs::rename(&self.path, &rotated)?;
            self.file = std::fs::File::create(&self.path)?;
            self.bytes = 0;
        }
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()?;
        self.bytes += len;
        Ok(())
    }
}

struct RecState {
    ring: VecDeque<RecorderFrame>,
    prev_t_ms: u64,
    prev: Option<ObsSnapshot>,
    seq: u64,
    jsonl: Option<JsonlSink>,
    io_errors: u64,
}

struct RecInner {
    registry: Registry,
    origin: Instant,
    ring_frames: usize,
    stop: AtomicBool,
    state: Mutex<RecState>,
}

/// A background registry sampler; see the module docs. Clones share the
/// same ring and sampler thread.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<RecInner>,
}

impl FlightRecorder {
    /// Start sampling `registry` per `cfg` on a background thread. The
    /// first frame lands after one interval. JSONL setup failures are
    /// reported immediately; later append errors are counted
    /// ([`FlightRecorder::io_errors`]) without killing the sampler —
    /// the in-memory ring (and thus forensics) outlives a full disk.
    pub fn start(registry: &Registry, cfg: RecorderConfig) -> std::io::Result<FlightRecorder> {
        let jsonl = match &cfg.jsonl_path {
            Some(path) => Some(JsonlSink::open(path, cfg.jsonl_max_bytes)?),
            None => None,
        };
        let recorder = FlightRecorder {
            inner: Arc::new(RecInner {
                registry: registry.clone(),
                origin: Instant::now(),
                ring_frames: cfg.ring_frames.max(1),
                stop: AtomicBool::new(false),
                state: Mutex::new(RecState {
                    ring: VecDeque::new(),
                    prev_t_ms: 0,
                    prev: None,
                    seq: 0,
                    jsonl,
                    io_errors: 0,
                }),
            }),
        };
        let sampler = recorder.clone();
        let interval = cfg.interval.max(Duration::from_millis(1));
        std::thread::Builder::new()
            .name("cn-obs-recorder".into())
            .spawn(move || {
                while !sampler.inner.stop.load(SeqCst) {
                    std::thread::sleep(interval);
                    if sampler.inner.stop.load(SeqCst) {
                        break;
                    }
                    sampler.sample_now();
                }
            })?;
        Ok(recorder)
    }

    /// Take one frame immediately (the sampler thread calls this on its
    /// own cadence; failure paths call it to capture the terminal state
    /// before dumping). Returns the frame it recorded.
    pub fn sample_now(&self) -> RecorderFrame {
        let elapsed_ms = u64::try_from(self.inner.origin.elapsed().as_millis()).unwrap_or(u64::MAX);
        let snapshot = self.inner.registry.snapshot();
        let mut state = self.inner.state.lock().unwrap();
        // Monotonic frame time even under timer coarseness: consecutive
        // frames never share a timestamp, so "strictly increasing" holds
        // by construction and window widths never reach zero.
        let t_ms = if state.seq == 0 {
            elapsed_ms.max(1)
        } else {
            elapsed_ms.max(state.prev_t_ms + 1)
        };
        let window_ms = (t_ms - state.prev_t_ms).max(1);
        let window = window_stats(&snapshot, state.prev.as_ref(), window_ms);
        let frame = RecorderFrame {
            seq: state.seq,
            t_ms,
            window_ms,
            snapshot,
            window,
        };
        state.seq += 1;
        state.prev_t_ms = t_ms;
        state.prev = Some(frame.snapshot.clone());
        if state.ring.len() == self.inner.ring_frames {
            state.ring.pop_front();
        }
        state.ring.push_back(frame.clone());
        if state.jsonl.is_some() {
            let line = serde_json::to_string(&frame).expect("frame serializes");
            if let Some(sink) = state.jsonl.as_mut() {
                if sink.append(&line).is_err() {
                    state.io_errors += 1;
                }
            }
        }
        frame
    }

    /// The ring, oldest first.
    pub fn frames(&self) -> Vec<RecorderFrame> {
        let state = self.inner.state.lock().unwrap();
        state.ring.iter().cloned().collect()
    }

    /// The newest frame, if any has been taken.
    pub fn latest(&self) -> Option<RecorderFrame> {
        let state = self.inner.state.lock().unwrap();
        state.ring.back().cloned()
    }

    /// JSONL append failures survived so far.
    pub fn io_errors(&self) -> u64 {
        self.inner.state.lock().unwrap().io_errors
    }

    /// Take one final frame, then write the full ring plus a terminal
    /// snapshot to `path` as one JSON document ([`ForensicsDump`]).
    pub fn dump_forensics(&self, path: &Path) -> std::io::Result<()> {
        self.sample_now();
        let dump = ForensicsDump {
            frames: self.frames(),
            last: self.inner.registry.snapshot(),
        };
        let json = serde_json::to_string(&dump).expect("dump serializes");
        std::fs::write(path, json + "\n")
    }

    /// Chain a process panic hook that captures a final frame and dumps
    /// forensics to `path` before the previous hook runs. The hook holds
    /// only a weak reference: once every recorder clone is dropped (or
    /// [`FlightRecorder::stop`] ran) the hook is inert.
    pub fn install_panic_hook(&self, path: &Path) {
        let weak = Arc::downgrade(&self.inner);
        let path = path.to_path_buf();
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if let Some(inner) = weak.upgrade() {
                if !inner.stop.load(SeqCst) {
                    let _ = (FlightRecorder { inner }).dump_forensics(&path);
                }
            }
            previous(info);
        }));
    }

    /// Stop the sampler thread (it exits within one interval). The ring
    /// stays readable; [`FlightRecorder::dump_forensics`] still works.
    pub fn stop(&self) {
        self.inner.stop.store(true, SeqCst);
    }
}

impl Drop for RecInner {
    fn drop(&mut self) {
        self.stop.store(true, SeqCst);
    }
}

/// Derive the window view: counter rates against the previous frame's
/// snapshot (absent series read as zero) and non-empty histogram deltas.
fn window_stats(cur: &ObsSnapshot, prev: Option<&ObsSnapshot>, window_ms: u64) -> WindowStats {
    let window_s = window_ms as f64 / 1_000.0;
    let prev_metric = |name: &str, labels: &[(String, String)]| {
        prev.and_then(|p| {
            p.metrics
                .iter()
                .find(|m| m.name == name && m.labels == *labels)
        })
    };
    let mut rates = Vec::new();
    let mut histograms = Vec::new();
    for m in &cur.metrics {
        match &m.value {
            MetricValue::Counter { value } => {
                let before = match prev_metric(&m.name, &m.labels).map(|p| &p.value) {
                    Some(MetricValue::Counter { value }) => *value,
                    _ => 0,
                };
                rates.push(RateSample {
                    name: m.name.clone(),
                    labels: m.labels.clone(),
                    per_s: value.saturating_sub(before) as f64 / window_s,
                });
            }
            MetricValue::Histogram { histogram } => {
                let delta = match prev_metric(&m.name, &m.labels).map(|p| &p.value) {
                    Some(MetricValue::Histogram { histogram: old }) => histogram.delta_since(old),
                    _ => histogram.clone(),
                };
                if !delta.is_empty() {
                    histograms.push(HistogramWindowSample {
                        name: m.name.clone(),
                        labels: m.labels.clone(),
                        delta,
                    });
                }
            }
            MetricValue::Gauge { .. } => {} // levels live in the snapshot
        }
    }
    WindowStats { rates, histograms }
}

// ---------------------------------------------------------------------------
// Validation (the obs_check CI contract)
// ---------------------------------------------------------------------------

/// Check the recorder invariants over a frame sequence (oldest first):
/// `seq` and `t_ms` strictly increase, every cumulative counter series
/// is monotone non-decreasing, and every window rate is finite and
/// non-negative. Returns the number of frames checked.
pub fn validate_frames(frames: &[RecorderFrame]) -> Result<usize, String> {
    use std::collections::BTreeMap;
    let mut counters: BTreeMap<(String, Vec<(String, String)>), u64> = BTreeMap::new();
    let mut prev: Option<(u64, u64)> = None;
    for frame in frames {
        if let Some((seq, t_ms)) = prev {
            if frame.seq <= seq {
                return Err(format!("seq not increasing: {} after {}", frame.seq, seq));
            }
            if frame.t_ms <= t_ms {
                return Err(format!(
                    "t_ms not increasing: {} after {} (seq {})",
                    frame.t_ms, t_ms, frame.seq
                ));
            }
        }
        prev = Some((frame.seq, frame.t_ms));
        if frame.window_ms == 0 {
            return Err(format!("zero-width window at seq {}", frame.seq));
        }
        for m in &frame.snapshot.metrics {
            if let MetricValue::Counter { value } = m.value {
                let key = (m.name.clone(), m.labels.clone());
                if let Some(&before) = counters.get(&key) {
                    if value < before {
                        return Err(format!(
                            "counter {} regressed {} -> {} at seq {}",
                            m.name, before, value, frame.seq
                        ));
                    }
                }
                counters.insert(key, value);
            }
        }
        for r in &frame.window.rates {
            if !r.per_s.is_finite() || r.per_s < 0.0 {
                return Err(format!(
                    "rate {}{:?} = {} at seq {} (need finite >= 0)",
                    r.name, r.labels, r.per_s, frame.seq
                ));
            }
        }
    }
    Ok(frames.len())
}

/// Parse a recorder JSONL file's text and run [`validate_frames`] over
/// it. Returns the number of frames. An empty file is an error — a
/// serve that produced no frames has a broken recorder.
pub fn validate_jsonl(text: &str) -> Result<usize, String> {
    let mut frames = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let frame: RecorderFrame = serde_json::from_str(line)
            .map_err(|e| format!("line {}: bad frame: {e}", lineno + 1))?;
        frames.push(frame);
    }
    if frames.is_empty() {
        return Err("no frames in recorder JSONL".into());
    }
    validate_frames(&frames)
}

/// Parse a forensics dump's text, run [`validate_frames`] over its
/// ring, and check the terminal snapshot is at least as advanced as the
/// last frame's (counters must not regress between the final frame and
/// the dump-time snapshot). Returns the number of ring frames.
pub fn validate_forensics(text: &str) -> Result<usize, String> {
    let dump: ForensicsDump =
        serde_json::from_str(text).map_err(|e| format!("bad forensics dump: {e}"))?;
    if dump.frames.is_empty() {
        return Err("forensics dump carries an empty ring".into());
    }
    let n = validate_frames(&dump.frames)?;
    let last_frame = &dump.frames[dump.frames.len() - 1].snapshot;
    for m in &last_frame.metrics {
        if let MetricValue::Counter { value } = m.value {
            let terminal = dump
                .last
                .metrics
                .iter()
                .find(|t| t.name == m.name && t.labels == m.labels);
            match terminal.map(|t| &t.value) {
                Some(MetricValue::Counter { value: tv }) if *tv >= value => {}
                Some(MetricValue::Counter { value: tv }) => {
                    return Err(format!(
                        "terminal snapshot regressed {} {} -> {}",
                        m.name, value, tv
                    ));
                }
                _ => {
                    return Err(format!(
                        "terminal snapshot lost counter {}{:?}",
                        m.name, m.labels
                    ));
                }
            }
        }
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_cfg() -> RecorderConfig {
        RecorderConfig {
            // A long interval: tests drive sample_now() by hand and the
            // background thread stays out of the way.
            interval: Duration::from_secs(3600),
            ring_frames: 4,
            jsonl_path: None,
            jsonl_max_bytes: 1024,
        }
    }

    #[test]
    fn frames_carry_window_rates_and_histogram_deltas() {
        let registry = Registry::new();
        let c = registry.counter("cn_test_events_total");
        let h = registry.histogram("cn_test_lag_ms");
        let rec = FlightRecorder::start(&registry, quiet_cfg()).unwrap();
        c.add(10);
        h.record(100);
        let f0 = rec.sample_now();
        assert_eq!(f0.seq, 0);
        let rate0 = &f0.window.rates[0];
        assert_eq!(rate0.name, "cn_test_events_total");
        assert!(rate0.per_s > 0.0 && rate0.per_s.is_finite());
        assert_eq!(f0.window.histograms[0].delta.count, 1);

        c.add(5);
        h.record(3);
        h.record(7);
        let f1 = rec.sample_now();
        assert!(f1.t_ms > f0.t_ms, "timestamps strictly increase");
        assert_eq!(f1.window.histograms[0].delta.count, 2, "window, not total");
        assert_eq!(
            f1.window.histograms[0]
                .delta
                .quantile_upper_bound(1.0)
                .unwrap(),
            7,
            "the window's max is 7; the cumulative 100 is a prior window"
        );
        // Rate reflects only this window's 5 events.
        let per_s = f1.window.rates[0].per_s;
        let expect = 5_000.0 / f1.window_ms as f64;
        assert!((per_s - expect).abs() < 1e-9, "{per_s} vs {expect}");

        // Nothing recorded → empty deltas elided, rate zero.
        let f2 = rec.sample_now();
        assert!(f2.window.histograms.is_empty());
        assert_eq!(f2.window.rates[0].per_s, 0.0);
        rec.stop();

        assert_eq!(validate_frames(&rec.frames()), Ok(3));
    }

    #[test]
    fn ring_is_bounded_and_seq_exposes_eviction() {
        let registry = Registry::new();
        registry.counter("cn_test_total").inc();
        let rec = FlightRecorder::start(&registry, quiet_cfg()).unwrap();
        for _ in 0..10 {
            rec.sample_now();
        }
        let frames = rec.frames();
        assert_eq!(frames.len(), 4, "ring capacity");
        assert_eq!(frames[0].seq, 6, "oldest surviving frame");
        assert_eq!(rec.latest().unwrap().seq, 9);
        assert_eq!(validate_frames(&frames), Ok(4));
        rec.stop();
    }

    #[test]
    fn jsonl_appends_parse_and_rotate() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cn-rec-{}.jsonl", std::process::id()));
        let rotated = {
            let mut os = path.clone().into_os_string();
            os.push(".1");
            PathBuf::from(os)
        };
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&rotated).ok();
        let registry = Registry::new();
        let c = registry.counter("cn_test_total");
        let mut cfg = quiet_cfg();
        cfg.jsonl_path = Some(path.clone());
        cfg.jsonl_max_bytes = 2_000; // a few frames per file
        let rec = FlightRecorder::start(&registry, cfg).unwrap();
        for _ in 0..30 {
            c.inc();
            rec.sample_now();
        }
        rec.stop();
        assert_eq!(rec.io_errors(), 0);
        let text = std::fs::read_to_string(&path).unwrap();
        let n = validate_jsonl(&text).expect("current file validates");
        assert!(n >= 1);
        assert!(
            std::fs::metadata(&path).unwrap().len() <= 2_000 + 1_000,
            "rotation bounds the live file"
        );
        let rotated_text = std::fs::read_to_string(&rotated).expect("rotation happened");
        validate_jsonl(&rotated_text).expect("rotated file validates");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&rotated).ok();
    }

    #[test]
    fn forensics_dump_round_trips_and_validates() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cn-forensics-{}.json", std::process::id()));
        let registry = Registry::new();
        let c = registry.counter("cn_test_total");
        let rec = FlightRecorder::start(&registry, quiet_cfg()).unwrap();
        c.add(3);
        rec.sample_now();
        c.add(4);
        rec.dump_forensics(&path).unwrap();
        rec.stop();
        let text = std::fs::read_to_string(&path).unwrap();
        let n = validate_forensics(&text).expect("dump validates");
        assert_eq!(n, 2, "ring frame plus the dump's final frame");
        let dump: ForensicsDump = serde_json::from_str(&text).unwrap();
        assert_eq!(dump.last.counter("cn_test_total"), Some(7));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn validators_reject_broken_series() {
        let registry = Registry::new();
        registry.counter("cn_test_total").add(5);
        let rec = FlightRecorder::start(&registry, quiet_cfg()).unwrap();
        let f0 = rec.sample_now();
        let f1 = rec.sample_now();
        rec.stop();

        // Regressing counter.
        let mut bad = f1.clone();
        for m in &mut bad.snapshot.metrics {
            if let MetricValue::Counter { value } = &mut m.value {
                *value = 1;
            }
        }
        let err = validate_frames(&[f0.clone(), bad]).unwrap_err();
        assert!(err.contains("regressed"), "{err}");

        // Non-increasing time.
        let mut stale = f1.clone();
        stale.t_ms = f0.t_ms;
        let err = validate_frames(&[f0.clone(), stale]).unwrap_err();
        assert!(err.contains("t_ms"), "{err}");

        // Non-finite rate.
        let mut inf = f1.clone();
        inf.window.rates[0].per_s = f64::NEG_INFINITY;
        let err = validate_frames(&[f0.clone(), inf]).unwrap_err();
        assert!(err.contains("finite"), "{err}");

        // Garbage JSONL and the empty file.
        assert!(validate_jsonl("{not a frame}\n").is_err());
        assert!(validate_jsonl("").is_err());
    }

    #[test]
    fn background_sampler_takes_frames_on_its_own() {
        let registry = Registry::new();
        registry.counter("cn_test_total").inc();
        let cfg = RecorderConfig {
            interval: Duration::from_millis(5),
            ring_frames: 64,
            jsonl_path: None,
            jsonl_max_bytes: 1 << 20,
        };
        let rec = FlightRecorder::start(&registry, cfg).unwrap();
        for _ in 0..200 {
            if rec.latest().is_some() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        rec.stop();
        assert!(
            rec.latest().is_some(),
            "sampler thread never produced a frame"
        );
        validate_frames(&rec.frames()).expect("sampled frames validate");
    }
}
