//! Snapshot types and the two exporters.
//!
//! [`ObsSnapshot`] is the frozen form of a registry: what the
//! `--metrics <path>` flags write (JSON, via the vendored serde shim),
//! what tests and CI gates assert against, and the input to the
//! Prometheus text renderer. Lookup helpers return `Option` so a gate
//! can distinguish "metric absent" from "metric zero".

use crate::metric::{bucket_upper_bound, HistogramSnapshot};
use serde::{Deserialize, Serialize};

/// One frozen metric value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricValue {
    /// A monotone counter.
    Counter {
        /// Current count.
        value: u64,
    },
    /// A level gauge.
    Gauge {
        /// Current level.
        value: u64,
    },
    /// A log₂ histogram.
    Histogram {
        /// The frozen buckets.
        histogram: HistogramSnapshot,
    },
}

/// One frozen metric: identity plus value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricSnapshot {
    /// Metric name (`cn_<crate>_<subsystem>_<name>`).
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: MetricValue,
}

impl MetricSnapshot {
    /// `name{k="v",...}` — the Prometheus identity of this metric.
    fn identity(&self) -> String {
        format!("{}{}", self.name, render_labels(&self.labels, &[]))
    }
}

/// A full registry snapshot: every metric, in `(name, labels)` order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsSnapshot {
    /// The frozen metrics.
    pub metrics: Vec<MetricSnapshot>,
}

impl ObsSnapshot {
    /// Find a metric by exact name and labels.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricSnapshot> {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        self.metrics
            .iter()
            .find(|m| m.name == name && m.labels == labels)
    }

    /// Value of the unlabeled counter `name`.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name, &[])?.value {
            MetricValue::Counter { value } => Some(value),
            _ => None,
        }
    }

    /// Sum of every counter named `name` across all label sets —
    /// e.g. total events over all `{shard="i"}` series. `None` when no
    /// such counter exists (a sum of zero counters is not "0 events").
    pub fn counter_total(&self, name: &str) -> Option<u64> {
        let mut found = false;
        let mut total = 0u64;
        for m in &self.metrics {
            if m.name == name {
                if let MetricValue::Counter { value } = m.value {
                    found = true;
                    total = total.saturating_add(value);
                }
            }
        }
        found.then_some(total)
    }

    /// Value of the unlabeled gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        match self.get(name, &[])?.value {
            MetricValue::Gauge { value } => Some(value),
            _ => None,
        }
    }

    /// The unlabeled histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match &self.get(name, &[])?.value {
            MetricValue::Histogram { histogram } => Some(histogram),
            _ => None,
        }
    }

    /// Serialize to the JSON form the `--metrics` flags write.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes") + "\n"
    }

    /// Parse a snapshot back from [`ObsSnapshot::to_json`] output.
    pub fn from_json(json: &str) -> Result<ObsSnapshot, String> {
        serde_json::from_str(json).map_err(|e| format!("invalid ObsSnapshot JSON: {e}"))
    }

    /// Prometheus text exposition format (one `# TYPE` line per family;
    /// histograms as cumulative `_bucket{le=...}` series plus `_sum` and
    /// `_count`; empty buckets elided).
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family: Option<&str> = None;
        for m in &self.metrics {
            let family_kind = match m.value {
                MetricValue::Counter { .. } => "counter",
                MetricValue::Gauge { .. } => "gauge",
                MetricValue::Histogram { .. } => "histogram",
            };
            if last_family != Some(m.name.as_str()) {
                out.push_str(&format!("# TYPE {} {}\n", m.name, family_kind));
                last_family = Some(m.name.as_str());
            }
            match &m.value {
                MetricValue::Counter { value } | MetricValue::Gauge { value } => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        m.name,
                        render_labels(&m.labels, &[]),
                        value
                    ));
                }
                MetricValue::Histogram { histogram } => {
                    // Finite buckets where the cumulative count moves; the
                    // last bucket is covered by the mandatory +Inf line.
                    let mut cumulative = 0u64;
                    for (i, &n) in histogram.buckets.iter().take(64).enumerate() {
                        if n == 0 {
                            continue;
                        }
                        cumulative = cumulative.saturating_add(n);
                        let le = bucket_upper_bound(i).to_string();
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            m.name,
                            render_labels(&m.labels, &[("le", &le)]),
                            cumulative
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        m.name,
                        render_labels(&m.labels, &[("le", "+Inf")]),
                        histogram.count
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        m.name,
                        render_labels(&m.labels, &[]),
                        histogram.sum
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        m.name,
                        render_labels(&m.labels, &[]),
                        histogram.count
                    ));
                }
            }
        }
        out
    }

    /// A compact human-readable rendering, one line per metric — what
    /// `examples/streaming_export.rs` prints periodically.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            match &m.value {
                MetricValue::Counter { value } | MetricValue::Gauge { value } => {
                    out.push_str(&format!("{} = {}\n", m.identity(), value));
                }
                MetricValue::Histogram { histogram } => {
                    if histogram.is_empty() {
                        out.push_str(&format!("{}: empty\n", m.identity()));
                    } else {
                        out.push_str(&format!(
                            "{}: count={} mean={:.1} p50<={} p99<={}\n",
                            m.identity(),
                            histogram.count,
                            histogram.mean().unwrap_or(0.0),
                            histogram.quantile_upper_bound(0.50).unwrap_or(0),
                            histogram.quantile_upper_bound(0.99).unwrap_or(0),
                        ));
                    }
                }
            }
        }
        out
    }
}

/// One sample line parsed back from Prometheus text exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Sample name as written (families expand to `_bucket`/`_sum`/
    /// `_count` lines, so this is not always a registry metric name).
    pub name: String,
    /// Label pairs in written order, values unescaped.
    pub labels: Vec<(String, String)>,
    /// The sample value (`+Inf` bucket counts and all integers parse as
    /// their `f64` value).
    pub value: f64,
}

/// A parsed scrape: the inverse of [`ObsSnapshot::prometheus`] down to
/// individual samples, used by the HTTP endpoint tests and
/// `live_check`'s mid-serve scrape gate to assert that what a real
/// Prometheus would ingest matches the registry. The parser implements
/// the text-format escaping rules (`\\`, `\"`, `\n` in label values),
/// so a hostile label value survives the render → scrape round trip.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PromText {
    /// Every sample line, in exposition order.
    pub samples: Vec<PromSample>,
}

impl PromText {
    /// Parse text exposition. Comment (`#`) and blank lines are
    /// skipped; any malformed sample line is an error (a scrape gate
    /// that silently dropped bad lines would pass vacuously).
    pub fn parse(text: &str) -> Result<PromText, String> {
        let mut samples = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim_end_matches('\r');
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            samples.push(parse_sample_line(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
        }
        Ok(PromText { samples })
    }

    /// The sample `name{labels}`, if present (labels compared as sets).
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let mut want: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        want.sort();
        self.samples
            .iter()
            .find(|s| {
                if s.name != name {
                    return false;
                }
                let mut got = s.labels.clone();
                got.sort();
                got == want
            })
            .map(|s| s.value)
    }

    /// The unlabeled sample `name` as a `u64`, `None` if absent or not
    /// a non-negative integer (counters and gauges are integral here).
    pub fn counter(&self, name: &str) -> Option<u64> {
        let v = self.value(name, &[])?;
        (v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64).then_some(v as u64)
    }
}

/// Parse one `name{k="v",...} value` sample line.
fn parse_sample_line(line: &str) -> Result<PromSample, String> {
    let mut chars = line.char_indices().peekable();
    let name_end = chars
        .find(|&(_, c)| c == '{' || c == ' ')
        .map(|(i, _)| i)
        .ok_or("no value on sample line")?;
    let name = &line[..name_end];
    if name.is_empty() {
        return Err("empty sample name".into());
    }
    let mut labels = Vec::new();
    let rest = &line[name_end..];
    let value_str = if let Some(body) = rest.strip_prefix('{') {
        let close = parse_labels(body, &mut labels)?;
        body[close..]
            .strip_prefix('}')
            .ok_or("unterminated label set")?
            .trim_start_matches(' ')
    } else {
        rest.trim_start_matches(' ')
    };
    let value = match value_str {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        s => s
            .parse::<f64>()
            .map_err(|_| format!("bad sample value {s:?}"))?,
    };
    Ok(PromSample {
        name: name.to_string(),
        labels,
        value,
    })
}

/// Parse `k="v",...` into `labels`, returning the byte offset of the
/// closing `}` within `body`. Label values unescape `\\` → `\`,
/// `\"` → `"`, `\n` → newline.
fn parse_labels(body: &str, labels: &mut Vec<(String, String)>) -> Result<usize, String> {
    let bytes = body.as_bytes();
    let mut i = 0usize;
    loop {
        if i >= bytes.len() {
            return Err("unterminated label set".into());
        }
        if bytes[i] == b'}' {
            return Ok(i);
        }
        if bytes[i] == b',' {
            i += 1;
            continue;
        }
        let key_start = i;
        while i < bytes.len() && bytes[i] != b'=' {
            i += 1;
        }
        let key = &body[key_start..i];
        if key.is_empty() || i >= bytes.len() {
            return Err("malformed label key".into());
        }
        i += 1; // '='
        if i >= bytes.len() || bytes[i] != b'"' {
            return Err("label value must be quoted".into());
        }
        i += 1; // opening quote
        let mut value = String::new();
        loop {
            match body[i..].chars().next() {
                None => return Err("unterminated label value".into()),
                Some('"') => {
                    i += 1;
                    break;
                }
                Some('\\') => {
                    let esc = body[i + 1..]
                        .chars()
                        .next()
                        .ok_or("dangling escape in label value")?;
                    value.push(match esc {
                        '\\' => '\\',
                        '"' => '"',
                        'n' => '\n',
                        other => return Err(format!("unknown escape \\{other}")),
                    });
                    i += 1 + esc.len_utf8();
                }
                Some(c) => {
                    value.push(c);
                    i += c.len_utf8();
                }
            }
        }
        labels.push((key.to_string(), value));
    }
}

/// `{base,extra...}` label rendering with Prometheus escaping; empty
/// label sets render as nothing.
fn render_labels(base: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if base.is_empty() && extra.is_empty() {
        return String::new();
    }
    let escape = |v: &str| {
        v.replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n")
    };
    let rendered: Vec<String> = base
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
        .chain(extra.iter().map(|(k, v)| format!("{k}=\"{}\"", escape(v))))
        .collect();
    format!("{{{}}}", rendered.join(","))
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    fn sample() -> crate::ObsSnapshot {
        let r = Registry::new();
        r.counter_with("cn_gen_shard_events_total", &[("shard", "0")])
            .add(10);
        r.counter_with("cn_gen_shard_events_total", &[("shard", "1")])
            .add(32);
        r.gauge("cn_gen_shard_workers").set(2);
        let h = r.histogram("cn_gen_merge_run_len");
        for v in [1u64, 1, 2, 8, 1000] {
            h.record(v);
        }
        r.snapshot()
    }

    #[test]
    fn json_round_trips_exactly() {
        let snap = sample();
        let json = snap.to_json();
        let back = crate::ObsSnapshot::from_json(&json).expect("parse back");
        assert_eq!(back, snap);
        assert!(crate::ObsSnapshot::from_json("{nope").is_err());
    }

    #[test]
    fn lookup_helpers_distinguish_absent_from_zero() {
        let snap = sample();
        assert_eq!(snap.counter_total("cn_gen_shard_events_total"), Some(42));
        assert_eq!(snap.counter_total("cn_gen_missing_total"), None);
        assert_eq!(snap.gauge("cn_gen_shard_workers"), Some(2));
        assert_eq!(snap.gauge("cn_gen_shard_events_total"), None, "wrong kind");
        assert_eq!(
            snap.get("cn_gen_shard_events_total", &[("shard", "1")])
                .map(|m| m.name.as_str()),
            Some("cn_gen_shard_events_total")
        );
        assert_eq!(snap.histogram("cn_gen_merge_run_len").unwrap().count, 5);
    }

    #[test]
    fn prometheus_exposition_has_families_series_and_cumulative_buckets() {
        let text = sample().prometheus();
        assert!(text.contains("# TYPE cn_gen_shard_events_total counter"));
        // One TYPE line per family even with two series.
        assert_eq!(text.matches("# TYPE cn_gen_shard_events_total").count(), 1);
        assert!(text.contains("cn_gen_shard_events_total{shard=\"0\"} 10"));
        assert!(text.contains("cn_gen_shard_events_total{shard=\"1\"} 32"));
        assert!(text.contains("# TYPE cn_gen_shard_workers gauge"));
        assert!(text.contains("cn_gen_shard_workers 2"));
        assert!(text.contains("# TYPE cn_gen_merge_run_len histogram"));
        // Cumulative: le="1" sees both 1s, +Inf sees everything.
        assert!(text.contains("cn_gen_merge_run_len_bucket{le=\"1\"} 2"));
        assert!(text.contains("cn_gen_merge_run_len_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("cn_gen_merge_run_len_sum 1012"));
        assert!(text.contains("cn_gen_merge_run_len_count 5"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter_with("cn_test_total", &[("path", "a\"b\\c\nd")])
            .inc();
        let text = r.snapshot().prometheus();
        assert!(text.contains(r#"path="a\"b\\c\nd""#), "{text}");
    }

    #[test]
    fn hostile_label_values_survive_the_render_scrape_round_trip() {
        // Backslash, quote, newline, and the literal two-character
        // sequence `\n` — the classic exposition-format traps.
        let hostile = "a\"b\\c\nd\\ne";
        let r = Registry::new();
        r.counter_with("cn_test_hostile_total", &[("path", hostile)])
            .add(7);
        r.counter("cn_test_plain_total").add(3);
        let text = r.snapshot().prometheus();
        // The rendered line must stay one line (the newline is escaped).
        assert!(
            text.lines()
                .any(|l| l.starts_with("cn_test_hostile_total{")),
            "{text}"
        );
        let parsed = crate::PromText::parse(&text).expect("scrape parses");
        assert_eq!(
            parsed.value("cn_test_hostile_total", &[("path", hostile)]),
            Some(7.0),
            "raw hostile value must be recoverable from the scrape"
        );
        assert_eq!(parsed.counter("cn_test_plain_total"), Some(3));
    }

    #[test]
    fn prom_parser_reads_full_expositions_and_rejects_garbage() {
        let text = sample().prometheus();
        let parsed = crate::PromText::parse(&text).expect("parse own exposition");
        assert_eq!(
            parsed.value("cn_gen_shard_events_total", &[("shard", "1")]),
            Some(32.0)
        );
        assert_eq!(parsed.counter("cn_gen_shard_workers"), Some(2));
        assert_eq!(parsed.counter("cn_gen_merge_run_len_count"), Some(5));
        assert_eq!(
            parsed.value("cn_gen_merge_run_len_bucket", &[("le", "+Inf")]),
            Some(5.0)
        );
        // Histogram sample lines expand per family: every sample parsed.
        assert!(parsed.samples.len() > sample().metrics.len());
        for bad in [
            "cn_x{le=\"1\" 3",       // unterminated label set
            "cn_x{le=1} 3",          // unquoted value
            "cn_x{le=\"\\q\"} 3",    // unknown escape
            "cn_x{le=\"1\"} pickle", // non-numeric value
            "{le=\"1\"} 3",          // empty name
            "cn_x",                  // no value
        ] {
            assert!(crate::PromText::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn render_is_one_line_per_metric() {
        let snap = sample();
        let text = snap.render();
        assert_eq!(text.lines().count(), snap.metrics.len());
        assert!(text.contains("cn_gen_merge_run_len: count=5"));
    }
}
