//! Snapshot types and the two exporters.
//!
//! [`ObsSnapshot`] is the frozen form of a registry: what the
//! `--metrics <path>` flags write (JSON, via the vendored serde shim),
//! what tests and CI gates assert against, and the input to the
//! Prometheus text renderer. Lookup helpers return `Option` so a gate
//! can distinguish "metric absent" from "metric zero".

use crate::metric::{bucket_upper_bound, HistogramSnapshot};
use serde::{Deserialize, Serialize};

/// One frozen metric value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricValue {
    /// A monotone counter.
    Counter {
        /// Current count.
        value: u64,
    },
    /// A level gauge.
    Gauge {
        /// Current level.
        value: u64,
    },
    /// A log₂ histogram.
    Histogram {
        /// The frozen buckets.
        histogram: HistogramSnapshot,
    },
}

/// One frozen metric: identity plus value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricSnapshot {
    /// Metric name (`cn_<crate>_<subsystem>_<name>`).
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: MetricValue,
}

impl MetricSnapshot {
    /// `name{k="v",...}` — the Prometheus identity of this metric.
    fn identity(&self) -> String {
        format!("{}{}", self.name, render_labels(&self.labels, &[]))
    }
}

/// A full registry snapshot: every metric, in `(name, labels)` order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsSnapshot {
    /// The frozen metrics.
    pub metrics: Vec<MetricSnapshot>,
}

impl ObsSnapshot {
    /// Find a metric by exact name and labels.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricSnapshot> {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        self.metrics
            .iter()
            .find(|m| m.name == name && m.labels == labels)
    }

    /// Value of the unlabeled counter `name`.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name, &[])?.value {
            MetricValue::Counter { value } => Some(value),
            _ => None,
        }
    }

    /// Sum of every counter named `name` across all label sets —
    /// e.g. total events over all `{shard="i"}` series. `None` when no
    /// such counter exists (a sum of zero counters is not "0 events").
    pub fn counter_total(&self, name: &str) -> Option<u64> {
        let mut found = false;
        let mut total = 0u64;
        for m in &self.metrics {
            if m.name == name {
                if let MetricValue::Counter { value } = m.value {
                    found = true;
                    total = total.saturating_add(value);
                }
            }
        }
        found.then_some(total)
    }

    /// Value of the unlabeled gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        match self.get(name, &[])?.value {
            MetricValue::Gauge { value } => Some(value),
            _ => None,
        }
    }

    /// The unlabeled histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match &self.get(name, &[])?.value {
            MetricValue::Histogram { histogram } => Some(histogram),
            _ => None,
        }
    }

    /// Serialize to the JSON form the `--metrics` flags write.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes") + "\n"
    }

    /// Parse a snapshot back from [`ObsSnapshot::to_json`] output.
    pub fn from_json(json: &str) -> Result<ObsSnapshot, String> {
        serde_json::from_str(json).map_err(|e| format!("invalid ObsSnapshot JSON: {e}"))
    }

    /// Prometheus text exposition format (one `# TYPE` line per family;
    /// histograms as cumulative `_bucket{le=...}` series plus `_sum` and
    /// `_count`; empty buckets elided).
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family: Option<&str> = None;
        for m in &self.metrics {
            let family_kind = match m.value {
                MetricValue::Counter { .. } => "counter",
                MetricValue::Gauge { .. } => "gauge",
                MetricValue::Histogram { .. } => "histogram",
            };
            if last_family != Some(m.name.as_str()) {
                out.push_str(&format!("# TYPE {} {}\n", m.name, family_kind));
                last_family = Some(m.name.as_str());
            }
            match &m.value {
                MetricValue::Counter { value } | MetricValue::Gauge { value } => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        m.name,
                        render_labels(&m.labels, &[]),
                        value
                    ));
                }
                MetricValue::Histogram { histogram } => {
                    // Finite buckets where the cumulative count moves; the
                    // last bucket is covered by the mandatory +Inf line.
                    let mut cumulative = 0u64;
                    for (i, &n) in histogram.buckets.iter().take(64).enumerate() {
                        if n == 0 {
                            continue;
                        }
                        cumulative = cumulative.saturating_add(n);
                        let le = bucket_upper_bound(i).to_string();
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            m.name,
                            render_labels(&m.labels, &[("le", &le)]),
                            cumulative
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        m.name,
                        render_labels(&m.labels, &[("le", "+Inf")]),
                        histogram.count
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        m.name,
                        render_labels(&m.labels, &[]),
                        histogram.sum
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        m.name,
                        render_labels(&m.labels, &[]),
                        histogram.count
                    ));
                }
            }
        }
        out
    }

    /// A compact human-readable rendering, one line per metric — what
    /// `examples/streaming_export.rs` prints periodically.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            match &m.value {
                MetricValue::Counter { value } | MetricValue::Gauge { value } => {
                    out.push_str(&format!("{} = {}\n", m.identity(), value));
                }
                MetricValue::Histogram { histogram } => {
                    if histogram.is_empty() {
                        out.push_str(&format!("{}: empty\n", m.identity()));
                    } else {
                        out.push_str(&format!(
                            "{}: count={} mean={:.1} p50<={} p99<={}\n",
                            m.identity(),
                            histogram.count,
                            histogram.mean().unwrap_or(0.0),
                            histogram.quantile_upper_bound(0.50).unwrap_or(0),
                            histogram.quantile_upper_bound(0.99).unwrap_or(0),
                        ));
                    }
                }
            }
        }
        out
    }
}

/// `{base,extra...}` label rendering with Prometheus escaping; empty
/// label sets render as nothing.
fn render_labels(base: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if base.is_empty() && extra.is_empty() {
        return String::new();
    }
    let escape = |v: &str| {
        v.replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n")
    };
    let rendered: Vec<String> = base
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
        .chain(extra.iter().map(|(k, v)| format!("{k}=\"{}\"", escape(v))))
        .collect();
    format!("{{{}}}", rendered.join(","))
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    fn sample() -> crate::ObsSnapshot {
        let r = Registry::new();
        r.counter_with("cn_gen_shard_events_total", &[("shard", "0")])
            .add(10);
        r.counter_with("cn_gen_shard_events_total", &[("shard", "1")])
            .add(32);
        r.gauge("cn_gen_shard_workers").set(2);
        let h = r.histogram("cn_gen_merge_run_len");
        for v in [1u64, 1, 2, 8, 1000] {
            h.record(v);
        }
        r.snapshot()
    }

    #[test]
    fn json_round_trips_exactly() {
        let snap = sample();
        let json = snap.to_json();
        let back = crate::ObsSnapshot::from_json(&json).expect("parse back");
        assert_eq!(back, snap);
        assert!(crate::ObsSnapshot::from_json("{nope").is_err());
    }

    #[test]
    fn lookup_helpers_distinguish_absent_from_zero() {
        let snap = sample();
        assert_eq!(snap.counter_total("cn_gen_shard_events_total"), Some(42));
        assert_eq!(snap.counter_total("cn_gen_missing_total"), None);
        assert_eq!(snap.gauge("cn_gen_shard_workers"), Some(2));
        assert_eq!(snap.gauge("cn_gen_shard_events_total"), None, "wrong kind");
        assert_eq!(
            snap.get("cn_gen_shard_events_total", &[("shard", "1")])
                .map(|m| m.name.as_str()),
            Some("cn_gen_shard_events_total")
        );
        assert_eq!(snap.histogram("cn_gen_merge_run_len").unwrap().count, 5);
    }

    #[test]
    fn prometheus_exposition_has_families_series_and_cumulative_buckets() {
        let text = sample().prometheus();
        assert!(text.contains("# TYPE cn_gen_shard_events_total counter"));
        // One TYPE line per family even with two series.
        assert_eq!(text.matches("# TYPE cn_gen_shard_events_total").count(), 1);
        assert!(text.contains("cn_gen_shard_events_total{shard=\"0\"} 10"));
        assert!(text.contains("cn_gen_shard_events_total{shard=\"1\"} 32"));
        assert!(text.contains("# TYPE cn_gen_shard_workers gauge"));
        assert!(text.contains("cn_gen_shard_workers 2"));
        assert!(text.contains("# TYPE cn_gen_merge_run_len histogram"));
        // Cumulative: le="1" sees both 1s, +Inf sees everything.
        assert!(text.contains("cn_gen_merge_run_len_bucket{le=\"1\"} 2"));
        assert!(text.contains("cn_gen_merge_run_len_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("cn_gen_merge_run_len_sum 1012"));
        assert!(text.contains("cn_gen_merge_run_len_count 5"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter_with("cn_test_total", &[("path", "a\"b\\c\nd")])
            .inc();
        let text = r.snapshot().prometheus();
        assert!(text.contains(r#"path="a\"b\\c\nd""#), "{text}");
    }

    #[test]
    fn render_is_one_line_per_metric() {
        let snap = sample();
        let text = snap.render();
        assert_eq!(text.lines().count(), snap.metrics.len());
        assert!(text.contains("cn_gen_merge_run_len: count=5"));
    }
}
