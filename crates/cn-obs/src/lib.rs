//! Zero-dependency metrics and span tracing for the traffic pipelines.
//!
//! The paper's stated downstream use for generated control-plane traffic
//! is driving and *monitoring* a mobile core (§3.1: evaluating MCN
//! designs, sizing deployments, tuning monitoring) — this crate gives our
//! own pipelines the same telemetry. It is std-only (the build container
//! has no registry access; serialization goes through the vendored
//! `serde`/`serde_json` shims) and is wired through three hot paths:
//!
//! * `cn-gen::shard` — per-shard events/blocks/stall counters, the merge
//!   run-length histogram, and the inline-vs-parallel mode gauge;
//! * `cn-mcn` — queueing depth/latency histograms, overload shed counts
//!   by priority, per-NF transaction counters;
//! * the `gen_bench` / `verify_model` binaries — `--metrics <path>`
//!   dumps an [`ObsSnapshot`] next to their normal output.
//!
//! ### Model
//!
//! A [`Registry`] owns named metrics; handles ([`Counter`], [`Gauge`],
//! [`Histogram`]) are cheap `Arc` clones that hot paths keep and update
//! with relaxed atomics — `record()` never allocates and never takes a
//! lock. A **disabled** registry ([`Registry::disabled`]) hands out
//! no-op handles whose updates compile to a predictable branch, so
//! instrumented code costs nothing when observability is off.
//!
//! Histograms use fixed log₂ buckets (65 of them, covering the full
//! `u64` range — `u64::MAX` lands in the last bucket, it does not wrap),
//! so they are allocation-free to record and cheap to merge across shard
//! workers: [`HistogramSnapshot::merge`] is associative, commutative, and
//! count-preserving (property-tested in `tests/properties.rs`).
//!
//! [`Span`] / [`span!`] time coarse stages into `<name>` histograms
//! (nanoseconds) on scope exit.
//!
//! ### Naming
//!
//! Metrics follow `cn_<crate>_<subsystem>_<name>` with Prometheus
//! conventions (`_total` for counters, unit suffixes like `_ns`/`_us`
//! where applicable); dimensions such as the shard index or priority
//! class are labels, not name fragments. See DESIGN.md §7.
//!
//! ### Export
//!
//! [`Registry::snapshot`] freezes every metric into an [`ObsSnapshot`]
//! (serializable, with lookup helpers for gates and tests);
//! [`ObsSnapshot::prometheus`] renders text exposition format and
//! [`ObsSnapshot::to_json`] the JSON form the `--metrics` flags write.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod http;
pub mod metric;
pub mod recorder;
pub mod registry;
pub mod span;
pub mod trace;

pub use export::{MetricSnapshot, MetricValue, ObsSnapshot, PromSample, PromText};
pub use http::{ConsumerStatus, IntrospectionServer, QuantileSample, StatusReport};
pub use metric::{
    bucket_index, bucket_upper_bound, Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS,
};
pub use recorder::{
    FlightRecorder, ForensicsDump, HistogramWindowSample, RateSample, RecorderConfig,
    RecorderFrame, WindowStats,
};
pub use registry::Registry;
pub use span::Span;
pub use trace::{SpanId, TraceEvent, TraceSink, TraceSpan};
