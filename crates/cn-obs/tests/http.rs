//! Tier-1 coverage of the introspection endpoint: raw `TcpStream` GETs
//! against a live listener — the same wire path a real Prometheus
//! scraper or a curl-wielding operator uses, no test-only shortcuts.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use cn_obs::recorder::{FlightRecorder, RecorderConfig};
use cn_obs::{IntrospectionServer, PromText, Registry, StatusReport};

/// Issue one raw HTTP request and return (status line, body).
fn http_get(addr: SocketAddr, request: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to introspection listener");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(request.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let head_end = response.find("\r\n\r\n").expect("header terminator");
    let status = response.lines().next().expect("status line").to_string();
    let headers = &response[..head_end];
    let body = response[head_end + 4..].to_string();
    // The whole point of Content-Length + Connection: close is that the
    // body is exactly delimited — hold the server to it.
    let content_length: usize = headers
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length header")
        .parse()
        .expect("numeric Content-Length");
    assert_eq!(body.len(), content_length, "body length vs declared");
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (String, String) {
    http_get(addr, &format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n"))
}

#[test]
fn endpoint_serves_metrics_status_and_404() {
    let registry = Registry::new();
    registry.counter("cn_test_emitted_total").add(42);
    registry
        .counter_with("cn_test_consumer_drops_total", &[("consumer", "0")])
        .add(3);
    let hist = registry.histogram("cn_test_lag_ms");
    for v in [1u64, 2, 900] {
        hist.record(v);
    }
    let recorder = FlightRecorder::start(
        &registry,
        RecorderConfig {
            interval: Duration::from_secs(3600), // driven by hand
            ring_frames: 16,
            jsonl_path: None,
            ..RecorderConfig::default()
        },
    )
    .expect("start recorder");
    recorder.sample_now();
    let server = IntrospectionServer::bind("127.0.0.1:0", &registry, Some(recorder.clone()))
        .expect("bind introspection listener");
    let addr = server.local_addr();

    // /metrics: parses as Prometheus text and recovers the registry's
    // counters exactly.
    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let scrape = PromText::parse(&body).expect("scrape parses");
    assert_eq!(scrape.counter("cn_test_emitted_total"), Some(42));
    assert_eq!(
        scrape.value("cn_test_consumer_drops_total", &[("consumer", "0")]),
        Some(3.0)
    );
    assert_eq!(scrape.counter("cn_test_lag_ms_count"), Some(3));
    // Cross-check the scrape against a direct snapshot: every counter
    // the registry holds must appear with the same value on the wire.
    let snapshot = registry.snapshot();
    for m in &snapshot.metrics {
        if let cn_obs::MetricValue::Counter { value } = m.value {
            let labels: Vec<(&str, &str)> = m
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            assert_eq!(
                scrape.value(&m.name, &labels),
                Some(value as f64),
                "scrape lost {}",
                m.name
            );
        }
    }

    // /status: JSON that parses back into StatusReport, windowed by the
    // attached recorder, with the consumer grouped out.
    let (status, body) = get(addr, "/status");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let report: StatusReport = serde_json::from_str(&body).expect("status parses");
    assert!(report.uptime_s >= 0.0);
    assert!(report.window_ms.is_some(), "recorder-backed window");
    assert_eq!(report.consumers.len(), 1);
    assert_eq!(report.consumers[0].consumer, "0");
    assert!(report
        .quantiles
        .iter()
        .any(|q| q.name == "cn_test_lag_ms" && q.p50 <= q.p99));

    // /recorder: the ring as JSON.
    let (status, body) = get(addr, "/recorder");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let frames: Vec<cn_obs::RecorderFrame> = serde_json::from_str(&body).expect("frames parse");
    assert_eq!(frames.len(), 1);
    assert_eq!(
        frames[0].snapshot.counter("cn_test_emitted_total"),
        Some(42)
    );

    // Unknown path → 404; non-GET → 405; garbage → 400. The listener
    // survives all three and keeps serving.
    let (status, _) = get(addr, "/nope");
    assert_eq!(status, "HTTP/1.1 404 Not Found");
    let (status, _) = http_get(addr, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(status, "HTTP/1.1 405 Method Not Allowed");
    let (status, _) = http_get(addr, "definitely not http\r\n\r\n");
    assert_eq!(status, "HTTP/1.1 400 Bad Request");
    let (status, _) = get(addr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK", "listener survives bad requests");

    recorder.stop();
    server.stop();
}

#[test]
fn scrape_sees_live_updates() {
    let registry = Registry::new();
    let counter = registry.counter("cn_test_live_total");
    let server = IntrospectionServer::bind("127.0.0.1:0", &registry, None).expect("bind listener");
    let addr = server.local_addr();
    counter.add(1);
    let (_, body) = get(addr, "/metrics");
    let first = PromText::parse(&body)
        .unwrap()
        .counter("cn_test_live_total");
    assert_eq!(first, Some(1));
    counter.add(9);
    let (_, body) = get(addr, "/metrics");
    let second = PromText::parse(&body)
        .unwrap()
        .counter("cn_test_live_total");
    assert_eq!(second, Some(10), "each scrape is a fresh snapshot");
    // Without a recorder, /status degrades to cumulative view.
    let (_, body) = get(addr, "/status");
    let report: StatusReport = serde_json::from_str(&body).unwrap();
    assert_eq!(report.window_ms, None);
    assert!(report
        .rates
        .iter()
        .any(|r| r.name == "cn_test_live_total" && r.per_s >= 0.0));
    server.stop();
}
