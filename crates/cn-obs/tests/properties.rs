//! Property tests for the metric layer.
//!
//! The sharded generator merges per-worker telemetry into one registry,
//! so [`HistogramSnapshot::merge`] must behave like the loser-tree merge
//! it mirrors: whatever way a record stream is split across shards and
//! whatever order the partial histograms fold back together, the
//! aggregate is identical — merge is associative, commutative, and
//! count-preserving. Counters must likewise survive concurrent
//! increment from multiple worker threads without losing updates.

use cn_obs::{HistogramSnapshot, Registry};
use proptest::prelude::*;

/// Values spanning every bucket regime: small, mid-range, and the
/// extremes where boundary arithmetic could overflow.
fn arb_values() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            0u64..16,
            1u64..1_000_000,
            (u64::MAX - 1000)..=u64::MAX,
            Just(u64::MAX),
        ],
        0..300,
    )
}

fn record_all(values: &[u64]) -> HistogramSnapshot {
    let mut h = HistogramSnapshot::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any shard split of a value stream, merged back in shard order,
    /// equals recording the whole stream into one histogram — and the
    /// total count is preserved exactly.
    #[test]
    fn merge_is_count_preserving_across_arbitrary_shard_splits(
        values in arb_values(),
        shards in 1usize..9,
    ) {
        // Stripe values over shards the way ShardedStream stripes UEs.
        let mut parts: Vec<HistogramSnapshot> =
            (0..shards).map(|_| HistogramSnapshot::new()).collect();
        for (i, &v) in values.iter().enumerate() {
            parts[i % shards].record(v);
        }
        let mut merged = HistogramSnapshot::new();
        for part in &parts {
            merged.merge(part);
        }
        let whole = record_all(&values);
        prop_assert_eq!(&merged, &whole);
        prop_assert_eq!(merged.count, values.len() as u64);
    }

    /// Merge order is irrelevant: a ⊕ b == b ⊕ a.
    #[test]
    fn merge_is_commutative(a in arb_values(), b in arb_values()) {
        let (ha, hb) = (record_all(&a), record_all(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    /// Merge grouping is irrelevant: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
    #[test]
    fn merge_is_associative(a in arb_values(), b in arb_values(), c in arb_values()) {
        let (ha, hb, hc) = (record_all(&a), record_all(&b), record_all(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Folding thread-local snapshots into a shared atomic histogram
    /// (the worker → registry path) matches recording directly.
    #[test]
    fn local_accumulation_matches_direct_recording(
        values in arb_values(),
        shards in 1usize..5,
    ) {
        let registry = Registry::new();
        let shared = registry.histogram("cn_test_fold");
        let mut parts: Vec<HistogramSnapshot> =
            (0..shards).map(|_| HistogramSnapshot::new()).collect();
        for (i, &v) in values.iter().enumerate() {
            parts[i % shards].record(v);
        }
        for part in &parts {
            shared.merge_snapshot(part);
        }
        prop_assert_eq!(shared.snapshot(), record_all(&values));
    }
}

/// `threads` workers hammer one shared counter (and one gauge, and one
/// histogram) concurrently; no update may be lost.
fn concurrent_updates(threads: usize) {
    const PER_THREAD: u64 = 20_000;
    let registry = Registry::new();
    let counter = registry.counter("cn_test_concurrent_total");
    let gauge = registry.gauge("cn_test_concurrent_gauge");
    let hist = registry.histogram("cn_test_concurrent_hist");
    std::thread::scope(|scope| {
        for t in 0..threads {
            let counter = counter.clone();
            let gauge = gauge.clone();
            let hist = hist.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    hist.record(t as u64 * PER_THREAD + i);
                    gauge.inc();
                    gauge.dec();
                }
            });
        }
    });
    let expected = threads as u64 * PER_THREAD;
    assert_eq!(counter.get(), expected, "lost counter increments");
    assert_eq!(hist.count(), expected, "lost histogram records");
    assert_eq!(gauge.get(), 0, "balanced inc/dec must return to zero");
    let snap = registry.snapshot();
    assert_eq!(
        snap.histogram("cn_test_concurrent_hist")
            .unwrap()
            .buckets
            .iter()
            .sum::<u64>(),
        expected,
        "bucket totals must equal the record count"
    );
}

#[test]
fn concurrent_counters_one_thread() {
    concurrent_updates(1);
}

#[test]
fn concurrent_counters_four_threads() {
    concurrent_updates(4);
}
