//! Statistical round-trip validation and conformance-replay harness.
//!
//! The paper validates its model by comparing distributions of generated
//! traffic against the modeled trace (§7, Tables 8–10). This crate closes
//! that loop as an executable subsystem over a *fully known* ground truth:
//!
//! * [`model::GroundTruth`] — a synthetic single-cluster [`cn_fit::ModelSet`]
//!   whose every branch probability and sojourn law is known exactly;
//! * [`roundtrip::run_round_trip`] — generate a seeded population, demand
//!   100% conformance under two-level replay, re-fit per-transition sojourn
//!   laws from the replayed trace, and gate each against its ground truth
//!   with the two-sample K–S test plus a probability tolerance band;
//! * [`golden`] — pinned FNV-1a hashes of canonical trace bytes across the
//!   batch/stream/sharded engines and thread/shard counts, catching any
//!   unintended change to generator behavior or the vendored RNG stream;
//! * [`scenario`] — golden gates for `cn-scenario`: identity inertness
//!   against the steady-state pin, engine-equivalence of perturbed
//!   overlays, and pinned hashes for the canonical flash-crowd and
//!   paging-storm scenarios;
//! * [`mcn`] — the closed-loop core-simulator gate: the canonical storm
//!   scenarios drive the multi-NF DES (batch and over the live wire),
//!   and the capacity numbers (p99 latency, shed rate, scaling lag) are
//!   pinned exactly in `BENCH_mcn.json`;
//! * [`verdict`] — the claim/measured/pass report shape shared with
//!   `cn-eval`'s paper-claims table.
//!
//! Small configurations run under `cargo test`; the same checks run at
//! depth via `cargo run --release -p cn-verify --bin verify_model`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod golden;
pub mod mcn;
pub mod model;
pub mod roundtrip;
pub mod scenario;
pub mod verdict;

pub use golden::{
    check_pinned, fnv1a64, run_golden, run_golden_observed, trace_hash, GoldenCase, GoldenReport,
};
pub use mcn::{
    check_bench, check_bench_at, drive_des, mcn_des_config, McnBench, McnError, McnScenarioBench,
};
pub use model::GroundTruth;
pub use roundtrip::{run_round_trip, RoundTripConfig, RoundTripReport, TransitionCheck};
pub use scenario::{
    flash_crowd_spec, identity_spec, paging_storm_spec, run_scenario_golden, PIN_FLASH_CROWD,
    PIN_IDENTITY, PIN_PAGING_STORM,
};
pub use verdict::{Verdict, VerdictReport};
