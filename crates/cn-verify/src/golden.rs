//! Golden-trace hashing: the cross-engine, cross-run regression gate.
//!
//! PR 1's parallel generator guarantees that the batch engine, the
//! sequential [`PopulationStream`], and the work-stealing [`ShardedStream`]
//! all produce byte-identical traces for the same [`GenConfig`], at any
//! thread or shard count. This module turns that guarantee into two
//! executable checks:
//!
//! * **consistency** — hash the canonical binary serialization
//!   ([`cn_trace::io::to_binary`]) of the same small seeded trace produced
//!   by every engine × `threads {1,4}` × `shards {1,8}` combination —
//!   plus the out-of-core exporter with both an all-memory and a
//!   spill-everything budget — and demand a single hash;
//! * **stability** — compare that hash against a pinned value checked into
//!   `golden/hashes.json`, so a behavioral change to the generator, the
//!   model sampling order, or the vendored RNG stream fails loudly instead
//!   of silently shifting every downstream experiment. Re-bless
//!   intentionally changed hashes with `CN_VERIFY_BLESS=1`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use cn_fit::ModelSet;
use cn_gen::{
    generate, generate_out_of_core, GenConfig, OutOfCoreConfig, PopulationStream, ShardedStream,
};
use cn_obs::Registry;
use cn_trace::{PopulationMix, Timestamp, Trace};
use serde::{Deserialize, Serialize};

/// 64-bit FNV-1a over a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Hash of a trace's canonical binary serialization.
pub fn trace_hash(trace: &Trace) -> u64 {
    fnv1a64(&cn_trace::io::to_binary(trace))
}

/// One engine configuration and the hash it produced.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoldenCase {
    /// Engine name: `batch`, `stream`, or `sharded`.
    pub engine: String,
    /// Worker threads (batch engine only; 0 elsewhere).
    pub threads: usize,
    /// Shard count (sharded engine only; 0 elsewhere).
    pub shards: usize,
    /// Events in the produced trace.
    pub events: usize,
    /// FNV-1a 64 hash of the canonical serialization.
    pub hash: u64,
}

/// All cases of one golden run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoldenReport {
    /// Per-engine cases.
    pub cases: Vec<GoldenCase>,
    /// True when every case produced the same hash.
    pub consistent: bool,
}

impl GoldenReport {
    /// The common hash, when consistent and non-empty.
    pub fn hash(&self) -> Option<u64> {
        match (self.consistent, self.cases.first()) {
            (true, Some(c)) => Some(c.hash),
            _ => None,
        }
    }

    /// One line per case plus the consistency verdict.
    pub fn render(&self) -> String {
        let mut out = String::from("== golden trace hashes ==\n");
        for c in &self.cases {
            out.push_str(&format!(
                "{:<8} threads={} shards={}  events={}  {:#018x}\n",
                c.engine, c.threads, c.shards, c.events, c.hash
            ));
        }
        out.push_str(if self.consistent {
            "all engines agree\n"
        } else {
            "ENGINE DIVERGENCE\n"
        });
        out
    }
}

/// The fixed small-population config every golden run uses: 40 UEs over
/// 2 hours. Small enough to hash in milliseconds, large enough to exercise
/// every transition, both shard paths, and the cross-hour boundary.
pub fn standard_config() -> GenConfig {
    GenConfig::new(
        PopulationMix::new(24, 8, 8),
        Timestamp::at_hour(0, 9),
        2.0,
        0xC0FF_EE00,
    )
}

/// Produce the same trace with every engine/thread/shard combination and
/// hash each result.
pub fn run_golden(models: &ModelSet, config: &GenConfig) -> GoldenReport {
    run_golden_observed(models, config, &Registry::disabled())
}

/// As [`run_golden`], with the sharded cases generated through a live
/// `cn-obs` registry ([`ShardedStream::with_shards_observed`]).
///
/// Two things fall out of observing the golden run:
///
/// * the byte-identity gate now also proves instrumentation is inert —
///   an observed sharded trace hashing differently from the unobserved
///   engines would fail `consistent` immediately;
/// * when a golden gate *fails*, the registry holds the per-shard event
///   ledger of the exact run that diverged (`verify_model --metrics`
///   writes it out), so debugging starts from data, not a re-run.
///
/// Counters accumulate across cases: each sharded case adds its events to
/// `cn_gen_merge_events_total`, and only parallel cases (shards > 1)
/// populate the per-shard `cn_gen_shard_events_total` series.
///
/// Sharded cases are drained through the fallible
/// [`ShardedStream::try_next`] / [`ShardedStream::finish`] API and the
/// drained-event totals are asserted against the batch engine's workload
/// size, so a worker failure or a short drain aborts the gate loudly
/// instead of hashing a truncated trace into an "engine divergence".
pub fn run_golden_observed(
    models: &ModelSet,
    config: &GenConfig,
    registry: &Registry,
) -> GoldenReport {
    let mut cases = Vec::new();
    for threads in [1usize, 4] {
        let mut c = *config;
        c.threads = threads;
        let trace = generate(models, &c);
        cases.push(GoldenCase {
            engine: "batch".into(),
            threads,
            shards: 0,
            events: trace.len(),
            hash: trace_hash(&trace),
        });
    }
    {
        let trace = Trace::from_records(PopulationStream::new(models, config).collect());
        cases.push(GoldenCase {
            engine: "stream".into(),
            threads: 0,
            shards: 0,
            events: trace.len(),
            hash: trace_hash(&trace),
        });
    }
    // Out-of-core export: hash the sink bytes directly (they are the
    // `to_binary` encoding, so the hash is comparable). Two extremes:
    // everything resident, and a zero budget that spills every non-empty
    // run to disk — spilling must never move a byte. The fine chunk size
    // exercises the k-way run merge, not just a single-run copy.
    for (tag, budget) in [("mem", usize::MAX), ("spill", 0usize)] {
        let occ = OutOfCoreConfig {
            chunk_ues: 7,
            buffer_budget_bytes: budget,
            temp_dir: None,
        };
        let (report, sink) =
            generate_out_of_core(models, config, &occ, std::io::Cursor::new(Vec::new()))
                .unwrap_or_else(|e| panic!("golden out-of-core ({tag}) run failed: {e}"));
        if budget == 0 {
            assert!(
                report.spilled_runs > 0,
                "golden spill case must actually spill (got {} runs, 0 spilled)",
                report.runs
            );
        }
        cases.push(GoldenCase {
            engine: format!("outofcore-{tag}"),
            threads: 0,
            shards: 0,
            events: report.events as usize,
            hash: fnv1a64(&sink.into_inner()),
        });
    }
    // The batch engine (already pushed) fixes the expected workload size;
    // the sharded cases below are drained through the *fallible* API so a
    // worker failure aborts the gate as a typed error instead of hashing a
    // silently truncated trace into a confusing "divergence".
    let expected_events = cases[0].events;
    for shards in [1usize, 8] {
        let mut stream = ShardedStream::with_shards_observed(models, config, shards, registry);
        let mut records = Vec::new();
        loop {
            match stream.try_next() {
                Ok(Some(r)) => records.push(r),
                Ok(None) => break,
                Err(e) => panic!("golden sharded run (shards={shards}) failed: {e}"),
            }
        }
        let stats = stream
            .finish()
            .unwrap_or_else(|e| panic!("golden sharded run (shards={shards}) failed: {e}"));
        // Drained-event accounting: everything the workers produced was
        // merged, and it is exactly the workload the batch engine defined.
        assert_eq!(
            stats.events as usize,
            records.len(),
            "sharded (shards={shards}) stream stats disagree with drained records"
        );
        assert_eq!(
            records.len(),
            expected_events,
            "sharded (shards={shards}) drained {} events, expected {expected_events}",
            records.len()
        );
        let trace = Trace::from_records(records);
        cases.push(GoldenCase {
            engine: "sharded".into(),
            threads: 0,
            shards,
            events: trace.len(),
            hash: trace_hash(&trace),
        });
    }
    let consistent = cases
        .windows(2)
        .all(|w| w[0].hash == w[1].hash && w[0].events == w[1].events);
    GoldenReport { cases, consistent }
}

/// Location of the pinned-hash file, inside the `cn-verify` crate so every
/// caller (tests anywhere in the workspace, the `verify_model` binary)
/// resolves the same file.
pub fn pinned_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("golden")
        .join("hashes.json")
}

fn read_pinned(path: &Path) -> BTreeMap<String, String> {
    std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or_default()
}

/// Compare `hash` against the pinned value under `key`.
///
/// With the environment variable `CN_VERIFY_BLESS` set, the pinned file is
/// rewritten with the new value instead and the check passes. A missing key
/// without blessing is an error: golden gates must never pass vacuously.
pub fn check_pinned(key: &str, hash: u64) -> Result<(), String> {
    check_pinned_at(
        &pinned_path(),
        key,
        hash,
        std::env::var_os("CN_VERIFY_BLESS").is_some(),
    )
}

/// [`check_pinned`] against an explicit file, with blessing as a parameter —
/// the testable core.
pub fn check_pinned_at(path: &Path, key: &str, hash: u64, bless: bool) -> Result<(), String> {
    let mut pinned = read_pinned(path);
    let formatted = format!("{hash:#018x}");
    if bless {
        pinned.insert(key.to_string(), formatted);
        let json = serde_json::to_string_pretty(&pinned).map_err(|e| e.to_string())?;
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        }
        std::fs::write(path, json + "\n").map_err(|e| e.to_string())?;
        return Ok(());
    }
    match pinned.get(key) {
        Some(expected) if *expected == formatted => Ok(()),
        Some(expected) => Err(format!(
            "golden hash mismatch for '{key}': pinned {expected}, got {formatted}. \
             If the generator change is intentional, re-bless with \
             CN_VERIFY_BLESS=1 (see TESTING.md)."
        )),
        None => Err(format!(
            "no pinned golden hash for '{key}' in {}. Run once with CN_VERIFY_BLESS=1 \
             to record {formatted}.",
            path.display()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hash_distinguishes_traces() {
        use cn_trace::{DeviceType, EventType, TraceRecord, UeId};
        let a = Trace::from_records(vec![TraceRecord::new(
            Timestamp::from_millis(10),
            UeId(1),
            DeviceType::Phone,
            EventType::Attach,
        )]);
        let b = Trace::from_records(vec![TraceRecord::new(
            Timestamp::from_millis(11),
            UeId(1),
            DeviceType::Phone,
            EventType::Attach,
        )]);
        assert_ne!(trace_hash(&a), trace_hash(&b));
        assert_eq!(trace_hash(&a), trace_hash(&a));
    }

    #[test]
    fn pin_lifecycle_against_a_scratch_file() {
        let dir = std::env::temp_dir().join("cn-verify-golden-test");
        let path = dir.join("hashes.json");
        let _ = std::fs::remove_file(&path);
        // Missing pin without blessing: an error that names the remedy.
        let err = check_pinned_at(&path, "k", 0x1234, false).unwrap_err();
        assert!(err.contains("CN_VERIFY_BLESS"), "{err}");
        // Bless, then match, then mismatch.
        check_pinned_at(&path, "k", 0x1234, true).unwrap();
        check_pinned_at(&path, "k", 0x1234, false).unwrap();
        let err = check_pinned_at(&path, "k", 0x5678, false).unwrap_err();
        assert!(err.contains("mismatch"), "{err}");
        let _ = std::fs::remove_file(&path);
    }
}
