//! Scenario golden gates: the metamorphic regression suite for
//! `cn-scenario`.
//!
//! Three executable claims, mirroring the engine-equivalence gate in
//! [`crate::golden`]:
//!
//! * **identity** — the empty scenario is *inert*: overlaying it on the
//!   standard golden config reproduces the `standard-v1` pinned hash byte
//!   for byte, on every engine (batch, sharded × {1,8}, out-of-core);
//! * **engine equivalence** — a *perturbed* scenario also hashes
//!   identically across all engines, because injections are a pure
//!   function of `(seed, phase, ue)` and never read baseline state;
//! * **stability** — the two canonical perturbed scenarios (a flash
//!   crowd, a paging storm after an outage) are pinned in
//!   `golden/hashes.json` next to the steady-state pin, re-blessable with
//!   `CN_VERIFY_BLESS=1`.
//!
//! Hashes are taken over the canonical binary serialization; the
//! out-of-core case hashes the *sink bytes* of
//! [`cn_scenario::write_scenario_binary`] directly, proving the streaming
//! export path emits the same bytes the batch path serializes.

use cn_fit::ModelSet;
use cn_gen::{generate_out_of_core, GenConfig, OutOfCoreConfig, ShardedStream};
use cn_obs::Registry;
use cn_scenario::{
    apply_scenario, write_scenario_binary, IterSource, Phase, PhaseKind, ScenarioSpec,
    ScenarioStream, StormKind, TimeWindow, UeSubset,
};
use cn_trace::DeviceType;

use crate::golden::{fnv1a64, trace_hash, GoldenCase, GoldenReport};

/// Pin key for the identity-scenario gate (shares the steady-state value:
/// identity must be byte-inert).
pub const PIN_IDENTITY: &str = "standard-v1";
/// Pin key for the canonical flash-crowd scenario.
pub const PIN_FLASH_CROWD: &str = "scenario-flash-crowd-v1";
/// Pin key for the canonical paging-storm scenario.
pub const PIN_PAGING_STORM: &str = "scenario-paging-storm-v1";

/// The identity scenario over the standard golden config.
pub fn identity_spec() -> ScenarioSpec {
    ScenarioSpec::identity("identity", 0)
}

/// Canonical flash crowd: 16 UEs attach in 4 waves over a 15-minute
/// window (each with a couple of handovers as the crowd moves between
/// cells), followed by a synchronized M2M reporting fleet — the stadium
/// scenario plus the metering fleet that doesn't care about the game.
pub fn flash_crowd_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "flash-crowd".into(),
        seed: 0xF1A5_4C04,
        phases: vec![
            Phase {
                name: "stadium-ingress".into(),
                window: TimeWindow::new(600.0, 900.0),
                kind: PhaseKind::FlashCrowd {
                    ues: UeSubset::new(0, 16),
                    waves: 4,
                    handovers_per_ue: 2,
                },
            },
            Phase {
                name: "meter-fleet".into(),
                window: TimeWindow::new(3600.0, 1800.0),
                kind: PhaseKind::M2mReporting {
                    ues: UeSubset::new(24, 32),
                    period_s: 300.0,
                    device: DeviceType::Tablet,
                },
            },
        ],
    }
}

/// Canonical paging storm: a half-hour outage over a third of the
/// population, then the re-registration avalanche — a TAU flood opening
/// the recovery, a paging storm riding on top of it.
pub fn paging_storm_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "paging-storm".into(),
        seed: 0x9A61_0570,
        phases: vec![
            Phase {
                name: "site-down".into(),
                window: TimeWindow::new(1200.0, 1800.0),
                kind: PhaseKind::Outage {
                    ues: UeSubset::new(0, 14),
                },
            },
            Phase {
                name: "tau-avalanche".into(),
                window: TimeWindow::new(3000.0, 600.0),
                kind: PhaseKind::SignalingStorm {
                    ues: UeSubset::new(0, 14),
                    kind: StormKind::TauFlood,
                    bursts_per_ue: 3,
                },
            },
            Phase {
                name: "paging-burst".into(),
                window: TimeWindow::new(3600.0, 900.0),
                kind: PhaseKind::SignalingStorm {
                    ues: UeSubset::new(0, 20),
                    kind: StormKind::Paging,
                    bursts_per_ue: 4,
                },
            },
        ],
    }
}

/// Overlay `spec` on every engine and hash each result.
///
/// Cases: `scenario-batch` (materialized overlay), `scenario-sharded` ×
/// shards {1, 8} (fallible streaming overlay), and `scenario-outofcore`
/// (baseline generated with a spill-everything out-of-core pass, decoded,
/// overlaid, and re-exported through [`write_scenario_binary`] — hashing
/// the sink bytes, not a re-serialization). `consistent` demands one hash
/// and one event count across all four.
pub fn run_scenario_golden(
    models: &ModelSet,
    config: &GenConfig,
    spec: &ScenarioSpec,
    registry: &Registry,
) -> GoldenReport {
    let mut cases = Vec::new();
    {
        let (trace, _) = apply_scenario(spec, models, config, registry)
            .unwrap_or_else(|e| panic!("scenario '{}' batch overlay failed: {e}", spec.name));
        cases.push(GoldenCase {
            engine: "scenario-batch".into(),
            threads: 0,
            shards: 0,
            events: trace.len(),
            hash: trace_hash(&trace),
        });
    }
    for shards in [1usize, 8] {
        let source = ShardedStream::with_shards(models, config, shards);
        let stream = ScenarioStream::new(spec, config, source, registry)
            .unwrap_or_else(|e| panic!("scenario '{}' rejected: {e}", spec.name));
        let (trace, _) = stream.collect_trace().unwrap_or_else(|e| {
            panic!(
                "scenario '{}' sharded overlay (shards={shards}) failed: {e}",
                spec.name
            )
        });
        cases.push(GoldenCase {
            engine: "scenario-sharded".into(),
            threads: 0,
            shards,
            events: trace.len(),
            hash: trace_hash(&trace),
        });
    }
    {
        // Baseline through the out-of-core pipeline (spill everything so
        // the disk path actually runs), then overlay the decoded records
        // and hash the streaming export's sink bytes.
        let occ = OutOfCoreConfig {
            chunk_ues: 7,
            buffer_budget_bytes: 0,
            temp_dir: None,
        };
        let (_, sink) =
            generate_out_of_core(models, config, &occ, std::io::Cursor::new(Vec::new()))
                .unwrap_or_else(|e| {
                    panic!("scenario '{}' out-of-core baseline failed: {e}", spec.name)
                });
        let baseline = cn_trace::io::from_binary(&sink.into_inner())
            .unwrap_or_else(|e| panic!("out-of-core baseline bytes unreadable: {e}"));
        let stream = ScenarioStream::new(
            spec,
            config,
            IterSource(baseline.into_records().into_iter()),
            registry,
        )
        .unwrap_or_else(|e| panic!("scenario '{}' rejected: {e}", spec.name));
        let mut out = std::io::Cursor::new(Vec::new());
        let stats = write_scenario_binary(stream, &mut out)
            .unwrap_or_else(|e| panic!("scenario '{}' out-of-core export failed: {e}", spec.name));
        cases.push(GoldenCase {
            engine: "scenario-outofcore".into(),
            threads: 0,
            shards: 0,
            events: stats.events as usize,
            hash: fnv1a64(&out.into_inner()),
        });
    }
    let consistent = cases
        .windows(2)
        .all(|w| w[0].hash == w[1].hash && w[0].events == w[1].events);
    GoldenReport { cases, consistent }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::standard_config;
    use crate::model::GroundTruth;

    #[test]
    fn canonical_specs_validate() {
        identity_spec().validate().unwrap();
        flash_crowd_spec().validate().unwrap();
        paging_storm_spec().validate().unwrap();
    }

    #[test]
    fn canonical_specs_fit_inside_the_standard_window() {
        let config = standard_config();
        let end = config.end().as_millis();
        for spec in [flash_crowd_spec(), paging_storm_spec()] {
            for phase in &spec.phases {
                assert!(
                    phase.window.end_ms(config.start) <= end,
                    "{}/{} overruns the standard config window",
                    spec.name,
                    phase.name
                );
            }
        }
    }

    #[test]
    fn canonical_specs_target_in_population_ues() {
        let total = standard_config().population.total();
        for spec in [flash_crowd_spec(), paging_storm_spec()] {
            for phase in &spec.phases {
                assert!(
                    phase.kind.ues().hi <= total,
                    "{}/{} targets UEs beyond the standard population",
                    spec.name,
                    phase.name
                );
            }
        }
    }

    #[test]
    fn perturbed_scenarios_change_the_trace() {
        let gt = GroundTruth::standard(11);
        let config = standard_config();
        let registry = Registry::disabled();
        let id = run_scenario_golden(&gt.set, &config, &identity_spec(), &registry);
        for spec in [flash_crowd_spec(), paging_storm_spec()] {
            let report = run_scenario_golden(&gt.set, &config, &spec, &registry);
            assert!(report.consistent, "{}", report.render());
            assert_ne!(
                report.hash(),
                id.hash(),
                "scenario '{}' did not perturb the trace",
                spec.name
            );
        }
    }
}
