//! Deep verification run: round-trip recovery plus golden-trace gates.
//!
//! ```text
//! cargo run --release -p cn-verify --bin verify_model [-- --quick]
//! ```
//!
//! Runs the same checks as the test suite but at population scale
//! (5,000 UEs over 12 simulated hours by default; `--quick` drops to the
//! unit-test scale). Exits non-zero when any claim fails, so the binary can
//! gate a release pipeline.

use cn_verify::{check_pinned, run_golden, run_round_trip, GroundTruth, RoundTripConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let gt = GroundTruth::standard(11);
    let cfg = if quick {
        RoundTripConfig::quick(911)
    } else {
        RoundTripConfig::deep(911)
    };

    let rt = run_round_trip(&gt, &cfg);
    print!("{}", rt.report.render());
    if !rt.rejection_histogram.is_empty() {
        println!("rejections:");
        for (what, n) in &rt.rejection_histogram {
            println!("  {n:>6}  {what}");
        }
    }

    let golden = run_golden(&gt.set, &cn_verify::golden::standard_config());
    print!("{}", golden.render());
    let pinned_ok = match golden.hash() {
        Some(hash) => match check_pinned("standard-v1", hash) {
            Ok(()) => {
                println!("pinned hash matches");
                true
            }
            Err(e) => {
                println!("{e}");
                false
            }
        },
        None => false,
    };

    if rt.all_pass() && golden.consistent && pinned_ok {
        println!("verify_model: all gates hold");
    } else {
        println!("verify_model: FAILURES (see above)");
        std::process::exit(1);
    }
}
