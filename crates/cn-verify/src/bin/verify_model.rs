//! Deep verification run: round-trip recovery plus golden-trace gates.
//!
//! ```text
//! cargo run --release -p cn-verify --bin verify_model \
//!     [-- --quick] [--metrics obs.json]
//! ```
//!
//! Runs the same checks as the test suite but at population scale
//! (5,000 UEs over 12 simulated hours by default; `--quick` drops to the
//! unit-test scale). Exits non-zero when any claim fails, so the binary can
//! gate a release pipeline.
//!
//! `--metrics PATH` attaches a `cn-obs` registry for the whole run and
//! writes its snapshot to `PATH` on exit (pass **and** fail): stage wall
//! times land in the `cn_verify_{round_trip,golden}_ns` histograms, gate
//! verdicts in the `cn_verify_gate_ok{gate=...}` gauges, and the golden
//! sharded generation runs observed, so a failing K–S or hash gate leaves
//! behind the event ledger of the exact run that diverged (see
//! TESTING.md).

use cn_obs::{Registry, Span};
use cn_verify::{check_pinned, run_golden_observed, run_round_trip, GroundTruth, RoundTripConfig};

fn main() {
    let mut quick = false;
    let mut metrics: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--metrics" => metrics = Some(args.next().expect("--metrics needs a path")),
            other => panic!("unknown argument: {other}"),
        }
    }
    let registry = if metrics.is_some() {
        Registry::new()
    } else {
        Registry::disabled()
    };

    let gt = GroundTruth::standard(11);
    let cfg = if quick {
        RoundTripConfig::quick(911)
    } else {
        RoundTripConfig::deep(911)
    };

    let span = Span::start(&registry, "cn_verify_round_trip_ns");
    let rt = run_round_trip(&gt, &cfg);
    span.finish();
    print!("{}", rt.report.render());
    if !rt.rejection_histogram.is_empty() {
        println!("rejections:");
        for (what, n) in &rt.rejection_histogram {
            println!("  {n:>6}  {what}");
        }
    }

    let span = Span::start(&registry, "cn_verify_golden_ns");
    let golden = run_golden_observed(&gt.set, &cn_verify::golden::standard_config(), &registry);
    span.finish();
    print!("{}", golden.render());
    let pinned_ok = match golden.hash() {
        Some(hash) => match check_pinned("standard-v1", hash) {
            Ok(()) => {
                println!("pinned hash matches");
                true
            }
            Err(e) => {
                println!("{e}");
                false
            }
        },
        None => false,
    };

    let gates: [(&str, bool); 3] = [
        ("round_trip", rt.all_pass()),
        ("golden_consistent", golden.consistent),
        ("golden_pinned", pinned_ok),
    ];
    for (gate, ok) in gates {
        registry
            .gauge_with("cn_verify_gate_ok", &[("gate", gate)])
            .set(u64::from(ok));
    }
    if let Some(path) = &metrics {
        std::fs::write(path, registry.snapshot().to_json()).expect("write metrics snapshot");
        eprintln!("wrote metrics snapshot to {path}");
    }

    if gates.iter().all(|&(_, ok)| ok) {
        println!("verify_model: all gates hold");
    } else {
        println!("verify_model: FAILURES (see above)");
        std::process::exit(1);
    }
}
