//! Closed-loop multi-NF core-simulator gate.
//!
//! ```text
//! cargo run --release -p cn-verify --bin mcn_check \
//!     [-- --metrics mcn_obs.json] [--bench BENCH_mcn.json]
//! ```
//!
//! Drives the canonical golden scenarios through the `cn-mcn`
//! discrete-event core simulator and gates on four properties:
//!
//! * **golden pins untouched** — the steady-state `standard-v1` pin and
//!   both canonical scenario pins still match; the workload feeding the
//!   simulator is byte-for-byte the one the scenario gate blessed;
//! * **seed determinism** — running the DES twice over the same trace
//!   (once observed, once blind) produces identical reports, field for
//!   field, floats included;
//! * **closed loop** — serving the scenario through `cn-live` over real
//!   TCP at 3600x compression and feeding the consumer side of the wire
//!   into the DES reproduces the batch-path report exactly. The whole
//!   generate → serve → simulate pipeline is one deterministic function
//!   of the seeds;
//! * **benchmark pin** — the capacity numbers (p99 latency, shed rate,
//!   MME scaling lag, utilization) match `BENCH_mcn.json` exactly.
//!   Re-bless intentional changes with `CN_MCN_BLESS=1`.
//!
//! `--metrics PATH` writes a `cn-obs` snapshot including the
//! `cn_mcn_des_*` family from the gated runs. `--bench PATH` overrides
//! the pinned benchmark location (the default is the repo-root
//! `BENCH_mcn.json`). Exits non-zero when any gate fails.

use std::net::{SocketAddr, TcpStream};
use std::path::Path;

use cn_gen::ShardedStream;
use cn_live::{LiveConfig, LiveRecordSource, LiveServer, SystemClock};
use cn_mcn::{DesReport, DesSim};
use cn_obs::{Registry, Span};
use cn_scenario::{ScenarioSpec, ScenarioStream};
use cn_trace::Trace;
use cn_verify::{
    check_bench_at, check_pinned, drive_des, flash_crowd_spec, identity_spec, mcn_des_config,
    paging_storm_spec, trace_hash, GroundTruth, McnBench, McnError, McnScenarioBench,
    PIN_FLASH_CROWD, PIN_IDENTITY, PIN_PAGING_STORM,
};

/// One trace hour per wall second, matching `live_check`.
const COMPRESSION: f64 = 3600.0;

/// Collect a scenario's full trace through the batch engine.
fn scenario_trace(gt: &GroundTruth, config: &cn_gen::GenConfig, spec: &ScenarioSpec) -> Trace {
    let stream = ScenarioStream::new(
        spec,
        config,
        ShardedStream::new(&gt.set, config),
        &Registry::disabled(),
    )
    .expect("valid scenario spec");
    let (trace, _stats) = stream.collect_trace().expect("batch scenario stream");
    trace
}

fn await_consumers(server: &LiveServer<SystemClock>, n: usize) {
    for _ in 0..10_000 {
        if server.hub().consumer_count() >= n {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    panic!("consumer never attached to the live server");
}

/// Serve the scenario over TCP and run the DES on the consumer side of
/// the wire: generate → pace → frame → TCP → decode → simulate, one
/// process boundary short of the production deployment.
fn closed_loop_report(
    gt: &GroundTruth,
    config: &cn_gen::GenConfig,
    spec: &ScenarioSpec,
) -> (DesReport, u64) {
    let mut cfg = LiveConfig::new(COMPRESSION);
    cfg.queue_frames = 1 << 16;
    let server =
        LiveServer::new(SystemClock::new(), cfg, &Registry::disabled()).expect("server config");
    let addr: SocketAddr = server.bind("127.0.0.1:0").expect("bind localhost");

    let consumer = std::thread::spawn(move || -> Result<(DesReport, u64), McnError> {
        let stream = TcpStream::connect(addr).expect("connect to live server");
        let source = LiveRecordSource::new(stream, 0).expect("live stream header");
        let sim = DesSim::new(mcn_des_config()).expect("valid DES config");
        drive_des(sim, source)
    });
    await_consumers(&server, 1);

    let source = ScenarioStream::new(
        spec,
        config,
        ShardedStream::new(&gt.set, config),
        &Registry::disabled(),
    )
    .expect("valid scenario spec");
    let report = server.serve(source, 0, None).expect("serve");
    report.consumers[0]
        .as_ref()
        .expect("consumer writer")
        .verdict()
        .expect("consumer lagged: bounded queue overflowed during the gate");

    consumer
        .join()
        .expect("consumer thread")
        .expect("closed-loop DES run")
}

fn main() {
    let mut metrics: Option<String> = None;
    let mut bench_override: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--metrics" => metrics = Some(args.next().expect("--metrics needs a path")),
            "--bench" => bench_override = Some(args.next().expect("--bench needs a path")),
            other => panic!("unknown argument: {other}"),
        }
    }
    let registry = if metrics.is_some() {
        Registry::new()
    } else {
        Registry::disabled()
    };

    let gt = GroundTruth::standard(11);
    let config = cn_verify::golden::standard_config();
    let mut all_ok = true;
    let mut gate = |registry: &Registry, name: &str, ok: bool| {
        registry
            .gauge_with("cn_verify_gate_ok", &[("gate", name)])
            .set(u64::from(ok));
        all_ok &= ok;
    };

    // Gate 1: the golden workload is untouched — steady-state pin plus
    // both canonical storm scenarios.
    let mut storm_traces: Vec<(&'static str, ScenarioSpec, Trace)> = Vec::new();
    for (key, spec) in [
        (PIN_IDENTITY, identity_spec()),
        (PIN_FLASH_CROWD, flash_crowd_spec()),
        (PIN_PAGING_STORM, paging_storm_spec()),
    ] {
        let trace = scenario_trace(&gt, &config, &spec);
        let ok = match check_pinned(key, trace_hash(&trace)) {
            Ok(()) => {
                println!("mcn_check: pin {key} holds ({} records)", trace.len());
                true
            }
            Err(e) => {
                println!("mcn_check: pin {key} FAILED: {e}");
                false
            }
        };
        gate(&registry, key, ok);
        if key != PIN_IDENTITY {
            storm_traces.push((key, spec, trace));
        }
    }

    // Gates 2+3 per storm scenario: determinism and the closed loop.
    let mut bench = McnBench {
        workload: format!(
            "GroundTruth::standard(11) x standard_config ({} UEs, {}h), DES mcn_des_config()",
            config.population.total(),
            config.duration_hours,
        ),
        scenarios: Vec::new(),
    };
    for (key, spec, trace) in &storm_traces {
        let span = Span::start(&registry, "cn_verify_mcn_ns");
        let direct =
            DesSim::run_trace(mcn_des_config(), trace, &registry).expect("valid DES config");
        let rerun = DesSim::run_trace(mcn_des_config(), trace, &Registry::disabled())
            .expect("valid DES config");
        span.finish();
        let deterministic = direct == rerun;
        if !deterministic {
            println!(
                "mcn_check: DES rerun DIVERGED on {} — not seed-deterministic",
                spec.name
            );
        }
        gate(
            &registry,
            &format!("mcn-determinism-{}", spec.name),
            deterministic,
        );

        let (live, live_records) = closed_loop_report(&gt, &config, spec);
        let closed = live == direct && live_records == trace.len() as u64;
        if closed {
            println!(
                "mcn_check: closed loop over {} matches the batch path \
                 ({} records, p99 {:.3} ms, shed rate {:.4})",
                spec.name, live_records, direct.p99_latency_ms, direct.shed_rate
            );
        } else {
            println!(
                "mcn_check: closed loop DIVERGED on {} ({} wire records vs {} batch)",
                spec.name,
                live_records,
                trace.len()
            );
        }
        gate(&registry, &format!("mcn-closed-loop-{}", spec.name), closed);

        let name = key
            .strip_prefix("scenario-")
            .and_then(|s| s.strip_suffix("-v1"))
            .unwrap_or(spec.name.as_str());
        bench
            .scenarios
            .push(McnScenarioBench::from_report(name, &direct));
    }

    // Gate 4: the capacity numbers match the pinned benchmark exactly.
    let bless = std::env::var_os("CN_MCN_BLESS").is_some();
    let bench_result = match &bench_override {
        Some(path) => check_bench_at(Path::new(path), &bench, bless),
        None => check_bench_at(&cn_verify::mcn::bench_path(), &bench, bless),
    };
    let bench_ok = match bench_result {
        Ok(()) => {
            println!(
                "mcn_check: benchmark pin {} ({} scenarios)",
                if bless { "re-blessed" } else { "holds" },
                bench.scenarios.len()
            );
            true
        }
        Err(e) => {
            println!("mcn_check: {e}");
            false
        }
    };
    gate(&registry, "mcn-bench", bench_ok);

    if let Some(path) = &metrics {
        std::fs::write(path, registry.snapshot().to_json()).expect("write metrics snapshot");
        eprintln!("wrote metrics snapshot to {path}");
    }

    if all_ok {
        println!("mcn_check: all gates hold");
    } else {
        println!("mcn_check: FAILURES (see above)");
        std::process::exit(1);
    }
}
