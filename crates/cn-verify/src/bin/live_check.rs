//! Live-service smoke gate: wire fidelity, drift, and kill/resume.
//!
//! ```text
//! cargo run --release -p cn-verify --bin live_check [-- --metrics obs.json]
//! ```
//!
//! Serves a 20K-UE, one-hour perturbed scenario through `cn-live` at
//! 3600x time compression (one trace hour per wall second) to a
//! localhost TCP consumer, and gates on three properties:
//!
//! * **wire fidelity** — the bytes the consumer captures are the batch
//!   engine's binary trace payload byte for byte (no gaps, End marker
//!   at the exact watermark, count-placeholder header);
//! * **bounded drift** — p99 per-record emission lag behind the
//!   absolute deadline stays under the gate (pacing jitter is expected
//!   at 240K records/wall-second; *accumulating* lag is the failure
//!   mode being gated);
//! * **kill/resume exactness** — stopping the server a third of the way
//!   in and resuming a fresh one from the checkpoint file reproduces
//!   the same total byte stream.
//!
//! `--metrics PATH` writes the `cn_live_*` family (plus the scenario
//! counters) of the full serve as a cn-obs JSON snapshot. Exits
//! non-zero on any gate failure.

use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::OnceLock;

use cn_gen::{GenConfig, ShardedStream};
use cn_live::{capture, Checkpoint, LiveConfig, LiveServer, SystemClock};
use cn_obs::Registry;
use cn_scenario::{
    Phase, PhaseKind, ScenarioSpec, ScenarioStream, StormKind, TimeWindow, UeSubset,
};
use cn_trace::{io::to_binary, DeviceType, PopulationMix, Timestamp, Trace};
use cn_verify::GroundTruth;

/// Fit the ground-truth models once; both the batch reference and every
/// serve span draw from the same set.
fn gt() -> &'static GroundTruth {
    static GT: OnceLock<GroundTruth> = OnceLock::new();
    GT.get_or_init(|| GroundTruth::standard(11))
}

/// One trace hour per wall second.
const COMPRESSION: f64 = 3600.0;
/// p99 per-record emission lag gate, in milliseconds.
const P99_LAG_GATE_MS: u64 = 5_000;

fn live_config() -> GenConfig {
    // The gen_bench 20K shape: 12_500 phones, 5_000 connected cars,
    // 2_500 tablets, over a single hour.
    GenConfig::new(
        PopulationMix::new(12_500, 5_000, 2_500),
        Timestamp::at_hour(0, 6),
        1.0,
        2023,
    )
}

/// A storm-and-fleet scenario sized for the 20K population: a paging
/// storm over a 2K-UE slice and a synchronized metering fleet.
fn live_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "live-smoke".into(),
        seed: 0x11FE_57A6,
        phases: vec![
            Phase {
                name: "paging-burst".into(),
                window: TimeWindow::new(600.0, 600.0),
                kind: PhaseKind::SignalingStorm {
                    ues: UeSubset::new(0, 2_000),
                    kind: StormKind::Paging,
                    bursts_per_ue: 2,
                },
            },
            Phase {
                name: "meter-fleet".into(),
                window: TimeWindow::new(1800.0, 900.0),
                kind: PhaseKind::M2mReporting {
                    ues: UeSubset::new(17_500, 18_500),
                    period_s: 60.0,
                    device: DeviceType::Tablet,
                },
            },
        ],
    }
}

/// Read one consumer's whole wire stream off a TCP connection.
fn drain_tcp(addr: std::net::SocketAddr) -> std::thread::JoinHandle<Vec<u8>> {
    std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect to live server");
        let mut bytes = Vec::new();
        std::io::Read::read_to_end(&mut stream, &mut bytes).expect("drain live stream");
        bytes
    })
}

fn await_consumers(server: &LiveServer<SystemClock>, n: usize) {
    for _ in 0..10_000 {
        if server.hub().consumer_count() >= n {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    panic!("consumer never attached to the live server");
}

/// Serve `[resume_from, stop_after)` of the scenario stream over TCP and
/// return (wire bytes, emitted watermark).
fn serve_span(
    spec: &ScenarioSpec,
    config: &GenConfig,
    registry: &Registry,
    resume_from: u64,
    stop_after: Option<u64>,
    ckpt: Option<(PathBuf, Checkpoint)>,
) -> (Vec<u8>, u64) {
    let mut cfg = LiveConfig::new(COMPRESSION);
    cfg.queue_frames = 1 << 16;
    cfg.stop_after = stop_after;
    let server = LiveServer::new(SystemClock::new(), cfg, registry).expect("server config");
    let addr = server.bind("127.0.0.1:0").expect("bind localhost");
    let consumer = drain_tcp(addr);
    await_consumers(&server, 1);
    let source = ScenarioStream::new(
        spec,
        config,
        ShardedStream::new(&gt().set, config),
        &Registry::disabled(),
    );
    let report = server
        .serve(source.expect("valid scenario spec"), resume_from, ckpt)
        .expect("serve");
    let report_consumer = report.consumers[0].as_ref().expect("consumer writer");
    report_consumer
        .verdict()
        .expect("consumer lagged: bounded queue overflowed during the gate");
    (consumer.join().expect("consumer thread"), report.emitted)
}

fn main() {
    let mut metrics: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--metrics" => metrics = Some(args.next().expect("--metrics needs a path")),
            other => panic!("unknown argument: {other}"),
        }
    }

    let config = live_config();
    let spec = live_spec();

    // Batch reference: the same scenario drained by the batch engine.
    eprintln!("live_check: building the batch reference trace...");
    let batch: Trace = {
        let mut stream = ScenarioStream::new(
            &spec,
            &config,
            ShardedStream::new(&gt().set, &config),
            &Registry::disabled(),
        )
        .expect("valid scenario spec");
        let mut out = Vec::new();
        while let Some(r) = stream.try_next().expect("batch stream") {
            out.push(r);
        }
        stream.finish().expect("batch finish");
        out.into_iter().collect()
    };
    let payload = to_binary(&batch);
    let total = batch.len() as u64;
    println!(
        "live_check: {} records over {}h of trace at {}x compression",
        total, config.duration_hours, COMPRESSION
    );

    // Gate 1+2: full serve — wire fidelity and bounded drift.
    let registry = Registry::new();
    let t0 = std::time::Instant::now();
    let (wire, emitted) = serve_span(&spec, &config, &registry, 0, None, None);
    let wall = t0.elapsed();
    assert_eq!(emitted, total);
    // Wire layout: 16-byte zero-count header, record frames, End frame.
    assert_eq!(&wire[0..8], cn_trace::io::BINARY_MAGIC, "bad wire magic");
    assert_eq!(
        &wire[8..16],
        &0u64.to_le_bytes(),
        "live header count must be the zero placeholder"
    );
    let frames = &wire[16..];
    assert_eq!(
        frames.len(),
        (total as usize + 1) * cn_trace::RECORD_BYTES,
        "wire carries exactly the records plus one End frame"
    );
    let (records_wire, end_frame) = frames.split_at(total as usize * cn_trace::RECORD_BYTES);
    assert_eq!(
        records_wire,
        &payload[16..],
        "served bytes diverge from the batch engine payload"
    );
    match cn_live::decode_frame(end_frame.try_into().unwrap()).expect("end frame") {
        cn_live::Frame::End { emitted } => assert_eq!(emitted, total),
        other => panic!("stream ended with {other:?}, not an End marker"),
    }
    println!(
        "wire fidelity: {} bytes byte-identical to batch payload",
        records_wire.len()
    );

    let snapshot = registry.snapshot();
    let lag = snapshot.histogram("cn_live_lag_ms").expect("lag histogram");
    let p50 = lag.quantile_upper_bound(0.50).unwrap_or(0);
    let p99 = lag.quantile_upper_bound(0.99).unwrap_or(0);
    let p100 = lag.quantile_upper_bound(1.0).unwrap_or(0);
    println!(
        "emission lag ms: p50<={p50} p99<={p99} max<={p100} (wall {:.2?}, gate p99<={P99_LAG_GATE_MS})",
        wall
    );
    assert!(
        p99 <= P99_LAG_GATE_MS,
        "p99 emission lag {p99} ms exceeds the {P99_LAG_GATE_MS} ms gate"
    );
    assert_eq!(
        snapshot.counter("cn_live_emitted_total"),
        Some(total),
        "emitted counter out of step"
    );

    // Gate 3: kill a third of the way in, resume from the checkpoint.
    let ckpt_path = std::env::temp_dir().join(format!("cn-live-check-{}.json", std::process::id()));
    let template = Checkpoint {
        emitted: 0,
        compression: COMPRESSION,
        config,
        scenario: Some(spec.clone()),
    };
    let cut = total / 3;
    let drill = Registry::new();
    let (wire_a, emitted_a) = serve_span(
        &spec,
        &config,
        &drill,
        0,
        Some(cut),
        Some((ckpt_path.clone(), template.clone())),
    );
    assert_eq!(emitted_a, cut);
    let ckpt = Checkpoint::load(&ckpt_path).expect("load checkpoint");
    assert_eq!(
        ckpt.emitted, cut,
        "final checkpoint must carry the exact watermark"
    );
    let resumed_spec = ckpt
        .scenario
        .clone()
        .expect("checkpoint carries the scenario");
    let (wire_b, emitted_b) = serve_span(
        &resumed_spec,
        &ckpt.config,
        &drill,
        ckpt.emitted,
        None,
        Some((ckpt_path.clone(), template)),
    );
    std::fs::remove_file(&ckpt_path).ok();
    assert_eq!(emitted_b, total);
    // First span: header + cut records, no End. Second: header + the
    // remaining records + End. Concatenated payloads = batch payload.
    let captured_a = capture(&wire_a[..]).expect("parse first span");
    assert_eq!(
        captured_a.end, None,
        "killed span must not carry an End marker"
    );
    let mut joined = wire_a[16..].to_vec();
    joined.extend_from_slice(&wire_b[16..wire_b.len() - cn_trace::RECORD_BYTES]);
    assert_eq!(
        joined,
        &payload[16..],
        "kill/resume did not reproduce the byte stream"
    );
    println!(
        "kill/resume: {} + {} records splice byte-exactly at watermark {}",
        captured_a.records.len(),
        (joined.len() / cn_trace::RECORD_BYTES) - captured_a.records.len(),
        cut
    );

    if let Some(path) = metrics {
        std::fs::write(&path, snapshot.to_json()).expect("write metrics snapshot");
        eprintln!("wrote {path}");
    }
    println!("live_check: all gates passed");
}
