//! Live-service smoke gate: wire fidelity, drift, kill/resume, and the
//! introspection plane.
//!
//! ```text
//! cargo run --release -p cn-verify --bin live_check [-- \
//!     --metrics obs.json --trace trace.json \
//!     --recorder-jsonl rec.jsonl --forensics forensics.json]
//! ```
//!
//! Serves a 20K-UE, one-hour perturbed scenario through `cn-live` at
//! 3600x time compression (one trace hour per wall second) to a
//! localhost TCP consumer, and gates on four properties:
//!
//! * **wire fidelity** — the bytes the consumer captures are the batch
//!   engine's binary trace payload byte for byte (no gaps, End marker
//!   at the exact watermark, count-placeholder header);
//! * **bounded drift** — estimated p99 per-record emission lag behind
//!   the absolute deadline stays under the gate (pacing jitter is
//!   expected at 240K records/wall-second; *accumulating* lag is the
//!   failure mode being gated);
//! * **kill/resume exactness** — stopping the server a third of the way
//!   in and resuming a fresh one from the checkpoint file reproduces
//!   the same total byte stream;
//! * **scrape fidelity** — a `/metrics` scraper polling mid-serve sees
//!   `cn_live_emitted_total` climb monotonically to exactly the record
//!   count on the wire, and the final `/status` + `/recorder` bodies
//!   parse and validate. The killed span mounts a flight recorder with
//!   a forensics path, so the induced failure leaves a dump that must
//!   itself validate.
//!
//! Flags (all optional): `--metrics PATH` writes the full-serve
//! cn-obs JSON snapshot; `--trace PATH` writes the Chrome trace-event
//! JSON (Perfetto-loadable) collected by the global sink; `--recorder-jsonl
//! PATH` streams full-serve recorder frames as JSONL; `--forensics PATH`
//! keeps the kill-drill forensics dump. Exits non-zero on any gate
//! failure.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use cn_gen::{GenConfig, ShardedStream};
use cn_live::{capture, Checkpoint, IntrospectionConfig, LiveConfig, LiveServer, SystemClock};
use cn_obs::{PromText, RecorderFrame, Registry, StatusReport, TraceSink};
use cn_scenario::{
    Phase, PhaseKind, ScenarioSpec, ScenarioStream, StormKind, TimeWindow, UeSubset,
};
use cn_trace::{io::to_binary, DeviceType, PopulationMix, Timestamp, Trace};
use cn_verify::GroundTruth;

/// Fit the ground-truth models once; both the batch reference and every
/// serve span draw from the same set.
fn gt() -> &'static GroundTruth {
    static GT: OnceLock<GroundTruth> = OnceLock::new();
    GT.get_or_init(|| GroundTruth::standard(11))
}

/// One trace hour per wall second.
const COMPRESSION: f64 = 3600.0;
/// p99 per-record emission lag gate, in milliseconds.
const P99_LAG_GATE_MS: f64 = 5_000.0;
/// Mid-serve scrape cadence; ~25 scrapes over the one-second serve.
const SCRAPE_EVERY_MS: u64 = 40;

fn live_config() -> GenConfig {
    // The gen_bench 20K shape: 12_500 phones, 5_000 connected cars,
    // 2_500 tablets, over a single hour.
    GenConfig::new(
        PopulationMix::new(12_500, 5_000, 2_500),
        Timestamp::at_hour(0, 6),
        1.0,
        2023,
    )
}

/// A storm-and-fleet scenario sized for the 20K population: a paging
/// storm over a 2K-UE slice and a synchronized metering fleet.
fn live_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "live-smoke".into(),
        seed: 0x11FE_57A6,
        phases: vec![
            Phase {
                name: "paging-burst".into(),
                window: TimeWindow::new(600.0, 600.0),
                kind: PhaseKind::SignalingStorm {
                    ues: UeSubset::new(0, 2_000),
                    kind: StormKind::Paging,
                    bursts_per_ue: 2,
                },
            },
            Phase {
                name: "meter-fleet".into(),
                window: TimeWindow::new(1800.0, 900.0),
                kind: PhaseKind::M2mReporting {
                    ues: UeSubset::new(17_500, 18_500),
                    period_s: 60.0,
                    device: DeviceType::Tablet,
                },
            },
        ],
    }
}

/// Read one consumer's whole wire stream off a TCP connection.
fn drain_tcp(addr: SocketAddr) -> std::thread::JoinHandle<Vec<u8>> {
    std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect to live server");
        let mut bytes = Vec::new();
        stream.read_to_end(&mut bytes).expect("drain live stream");
        bytes
    })
}

fn await_consumers(server: &LiveServer<SystemClock>, n: usize) {
    for _ in 0..10_000 {
        if server.hub().consumer_count() >= n {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    panic!("consumer never attached to the live server");
}

/// Blocking one-shot HTTP GET against the introspection listener; panics
/// on anything but a clean 200 with a consistent `Content-Length`.
fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to introspection port");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: live\r\nConnection: close\r\n\r\n"
    )
    .expect("send scrape request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read scrape response");
    let text = String::from_utf8(raw).expect("scrape response is UTF-8");
    let (head, body) = text
        .split_once("\r\n\r\n")
        .expect("scrape response has a header block");
    assert!(
        head.starts_with("HTTP/1.1 200"),
        "scrape {path} failed: {}",
        head.lines().next().unwrap_or(head)
    );
    let len: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("scrape response carries Content-Length")
        .trim()
        .parse()
        .expect("numeric Content-Length");
    assert_eq!(body.len(), len, "scrape {path} body truncated");
    body.to_string()
}

/// Everything one serve span produced: the wire bytes plus, when the
/// introspection plane was mounted, the mid-serve scrape trail and the
/// final endpoint bodies.
struct ServeOutcome {
    wire: Vec<u8>,
    emitted: u64,
    /// `cn_live_emitted_total` as seen by the mid-serve `/metrics`
    /// scraper, in scrape order.
    mid_emitted: Vec<u64>,
    final_metrics: Option<PromText>,
    final_status: Option<StatusReport>,
    final_frames: Option<Vec<RecorderFrame>>,
}

/// Serve `[resume_from, stop_after)` of the scenario stream over TCP,
/// optionally with the introspection plane mounted and scraped live.
fn serve_span(
    spec: &ScenarioSpec,
    config: &GenConfig,
    registry: &Registry,
    resume_from: u64,
    stop_after: Option<u64>,
    ckpt: Option<(PathBuf, Checkpoint)>,
    introspect: Option<IntrospectionConfig>,
) -> ServeOutcome {
    let mut cfg = LiveConfig::new(COMPRESSION);
    cfg.queue_frames = 1 << 16;
    cfg.stop_after = stop_after;
    let server = LiveServer::new(SystemClock::new(), cfg, registry).expect("server config");
    let addr = server.bind("127.0.0.1:0").expect("bind localhost");

    let obs_addr = introspect.map(|cfg| {
        server
            .mount_introspection(cfg)
            .expect("mount introspection plane")
    });
    // Scrape /metrics concurrently with the serve: the listener must
    // answer while the hot path runs, and every reading lands in the
    // monotone trail gated by the caller.
    let scrape_stop = Arc::new(AtomicBool::new(false));
    let scraper = obs_addr.map(|obs| {
        let stop = Arc::clone(&scrape_stop);
        std::thread::spawn(move || {
            let mut seen = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                let text = http_get(obs, "/metrics");
                let prom = PromText::parse(&text).expect("mid-serve scrape parses");
                seen.push(prom.counter("cn_live_emitted_total").unwrap_or(0));
                std::thread::sleep(std::time::Duration::from_millis(SCRAPE_EVERY_MS));
            }
            seen
        })
    });

    let consumer = drain_tcp(addr);
    await_consumers(&server, 1);
    let source = ScenarioStream::new(
        spec,
        config,
        ShardedStream::new(&gt().set, config),
        &Registry::disabled(),
    );
    let report = server
        .serve(source.expect("valid scenario spec"), resume_from, ckpt)
        .expect("serve");
    let report_consumer = report.consumers[0].as_ref().expect("consumer writer");
    report_consumer
        .verdict()
        .expect("consumer lagged: bounded queue overflowed during the gate");

    scrape_stop.store(true, Ordering::Relaxed);
    let mid_emitted = scraper
        .map(|h| h.join().expect("scraper thread"))
        .unwrap_or_default();
    // Final scrapes happen after the serve but before the server (and
    // its listener) wind down on drop.
    let (final_metrics, final_status, final_frames) = match obs_addr {
        None => (None, None, None),
        Some(obs) => {
            let metrics = PromText::parse(&http_get(obs, "/metrics")).expect("final /metrics");
            let status: StatusReport =
                serde_json::from_str(&http_get(obs, "/status")).expect("final /status");
            let frames: Vec<RecorderFrame> =
                serde_json::from_str(&http_get(obs, "/recorder")).expect("final /recorder");
            (Some(metrics), Some(status), Some(frames))
        }
    };
    ServeOutcome {
        wire: consumer.join().expect("consumer thread"),
        emitted: report.emitted,
        mid_emitted,
        final_metrics,
        final_status,
        final_frames,
    }
}

fn main() {
    let mut metrics: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut recorder_jsonl: Option<String> = None;
    let mut forensics: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--metrics" => metrics = Some(args.next().expect("--metrics needs a path")),
            "--trace" => trace_out = Some(args.next().expect("--trace needs a path")),
            "--recorder-jsonl" => {
                recorder_jsonl = Some(args.next().expect("--recorder-jsonl needs a path"))
            }
            "--forensics" => forensics = Some(args.next().expect("--forensics needs a path")),
            other => panic!("unknown argument: {other}"),
        }
    }

    // Collect stage spans (pacer sleeps, shard drains, merge windows,
    // scenario injections) for the whole run; written out as Chrome
    // trace-event JSON at the end when --trace is given.
    let sink = TraceSink::new();
    cn_obs::trace::install_global(&sink);

    let config = live_config();
    let spec = live_spec();

    // Batch reference: the same scenario drained by the batch engine.
    eprintln!("live_check: building the batch reference trace...");
    let batch: Trace = {
        let mut stream = ScenarioStream::new(
            &spec,
            &config,
            ShardedStream::new(&gt().set, &config),
            &Registry::disabled(),
        )
        .expect("valid scenario spec");
        let mut out = Vec::new();
        while let Some(r) = stream.try_next().expect("batch stream") {
            out.push(r);
        }
        stream.finish().expect("batch finish");
        out.into_iter().collect()
    };
    let payload = to_binary(&batch);
    let total = batch.len() as u64;
    println!(
        "live_check: {} records over {}h of trace at {}x compression",
        total, config.duration_hours, COMPRESSION
    );

    // Gate 1+2(+4): full serve — wire fidelity, bounded drift, and the
    // introspection plane scraped mid-serve.
    let mut introspect = IntrospectionConfig::new();
    introspect.recorder.interval = std::time::Duration::from_millis(50);
    introspect.recorder.jsonl_path = recorder_jsonl.as_ref().map(PathBuf::from);
    let registry = Registry::new();
    let t0 = std::time::Instant::now();
    let outcome = serve_span(&spec, &config, &registry, 0, None, None, Some(introspect));
    let wall = t0.elapsed();
    let (wire, emitted) = (outcome.wire, outcome.emitted);
    assert_eq!(emitted, total);
    // Wire layout: 16-byte zero-count header, record frames, End frame.
    assert_eq!(&wire[0..8], cn_trace::io::BINARY_MAGIC, "bad wire magic");
    assert_eq!(
        &wire[8..16],
        &0u64.to_le_bytes(),
        "live header count must be the zero placeholder"
    );
    let frames = &wire[16..];
    assert_eq!(
        frames.len(),
        (total as usize + 1) * cn_trace::RECORD_BYTES,
        "wire carries exactly the records plus one End frame"
    );
    let (records_wire, end_frame) = frames.split_at(total as usize * cn_trace::RECORD_BYTES);
    assert_eq!(
        records_wire,
        &payload[16..],
        "served bytes diverge from the batch engine payload"
    );
    match cn_live::decode_frame(end_frame.try_into().unwrap()).expect("end frame") {
        cn_live::Frame::End { emitted } => assert_eq!(emitted, total),
        other => panic!("stream ended with {other:?}, not an End marker"),
    }
    println!(
        "wire fidelity: {} bytes byte-identical to batch payload",
        records_wire.len()
    );

    // Gate 4: the scrape trail must be monotone, bounded by the wire
    // record count, and end (in the final scrape) at exactly that count.
    assert!(
        !outcome.mid_emitted.is_empty(),
        "scraper never reached /metrics during the serve"
    );
    for pair in outcome.mid_emitted.windows(2) {
        assert!(
            pair[0] <= pair[1],
            "scraped cn_live_emitted_total went backwards: {} -> {}",
            pair[0],
            pair[1]
        );
    }
    let last_mid = *outcome.mid_emitted.last().unwrap();
    assert!(
        last_mid <= total,
        "scraped emitted total {last_mid} exceeds the {total} records on the wire"
    );
    let final_metrics = outcome.final_metrics.expect("introspection was mounted");
    assert_eq!(
        final_metrics.counter("cn_live_emitted_total"),
        Some(total),
        "final /metrics scrape disagrees with the wire"
    );
    let status = outcome.final_status.expect("introspection was mounted");
    assert_eq!(
        status.consumers.len(),
        1,
        "/status must report the single TCP consumer"
    );
    let rec_frames = outcome.final_frames.expect("introspection was mounted");
    let validated = cn_obs::recorder::validate_frames(&rec_frames)
        .expect("recorder ring fails self-validation");
    println!(
        "introspection: {} mid-serve scrapes (last {last_mid}/{total}), {validated} recorder frames valid",
        outcome.mid_emitted.len()
    );

    let snapshot = registry.snapshot();
    let lag = snapshot.histogram("cn_live_lag_ms").expect("lag histogram");
    let p50 = lag.quantile_est(0.50).unwrap_or(0.0);
    let p99 = lag.quantile_est(0.99).unwrap_or(0.0);
    let p100 = lag.quantile_upper_bound(1.0).unwrap_or(0);
    println!(
        "emission lag ms: p50~{p50:.1} p99~{p99:.1} max<={p100} (wall {:.2?}, gate p99<={P99_LAG_GATE_MS})",
        wall
    );
    assert!(
        p99 <= P99_LAG_GATE_MS,
        "estimated p99 emission lag {p99:.1} ms exceeds the {P99_LAG_GATE_MS} ms gate"
    );
    assert_eq!(
        snapshot.counter("cn_live_emitted_total"),
        Some(total),
        "emitted counter out of step"
    );

    // Gate 3: kill a third of the way in, resume from the checkpoint.
    // The killed span carries a flight recorder with a forensics path:
    // the induced early stop must leave a dump, and the dump must
    // validate (obs_check re-checks the same file in CI).
    let ckpt_path = std::env::temp_dir().join(format!("cn-live-check-{}.json", std::process::id()));
    let forensics_path = forensics.clone().map(PathBuf::from).unwrap_or_else(|| {
        std::env::temp_dir().join(format!("cn-live-forensics-{}.json", std::process::id()))
    });
    let template = Checkpoint {
        emitted: 0,
        compression: COMPRESSION,
        config,
        scenario: Some(spec.clone()),
    };
    let cut = total / 3;
    let drill = Registry::new();
    let mut drill_introspect = IntrospectionConfig::new();
    drill_introspect.recorder.interval = std::time::Duration::from_millis(50);
    drill_introspect.forensics_path = Some(forensics_path.clone());
    let outcome_a = serve_span(
        &spec,
        &config,
        &drill,
        0,
        Some(cut),
        Some((ckpt_path.clone(), template.clone())),
        Some(drill_introspect),
    );
    let (wire_a, emitted_a) = (outcome_a.wire, outcome_a.emitted);
    assert_eq!(emitted_a, cut);
    let dump =
        std::fs::read_to_string(&forensics_path).expect("killed span must leave a forensics dump");
    let dump_frames =
        cn_obs::recorder::validate_forensics(&dump).expect("forensics dump fails validation");
    println!("forensics: kill at {cut} left a valid {dump_frames}-frame dump");
    if forensics.is_none() {
        std::fs::remove_file(&forensics_path).ok();
    }
    let ckpt = Checkpoint::load(&ckpt_path).expect("load checkpoint");
    assert_eq!(
        ckpt.emitted, cut,
        "final checkpoint must carry the exact watermark"
    );
    let resumed_spec = ckpt
        .scenario
        .clone()
        .expect("checkpoint carries the scenario");
    let outcome_b = serve_span(
        &resumed_spec,
        &ckpt.config,
        &drill,
        ckpt.emitted,
        None,
        Some((ckpt_path.clone(), template)),
        None,
    );
    let (wire_b, emitted_b) = (outcome_b.wire, outcome_b.emitted);
    std::fs::remove_file(&ckpt_path).ok();
    assert_eq!(emitted_b, total);
    // First span: header + cut records, no End. Second: header + the
    // remaining records + End. Concatenated payloads = batch payload.
    let captured_a = capture(&wire_a[..]).expect("parse first span");
    assert_eq!(
        captured_a.end, None,
        "killed span must not carry an End marker"
    );
    let mut joined = wire_a[16..].to_vec();
    joined.extend_from_slice(&wire_b[16..wire_b.len() - cn_trace::RECORD_BYTES]);
    assert_eq!(
        joined,
        &payload[16..],
        "kill/resume did not reproduce the byte stream"
    );
    println!(
        "kill/resume: {} + {} records splice byte-exactly at watermark {}",
        captured_a.records.len(),
        (joined.len() / cn_trace::RECORD_BYTES) - captured_a.records.len(),
        cut
    );

    if let Some(path) = metrics {
        std::fs::write(&path, snapshot.to_json()).expect("write metrics snapshot");
        eprintln!("wrote {path}");
    }
    if let Some(path) = trace_out {
        std::fs::write(&path, sink.to_chrome_json()).expect("write trace JSON");
        eprintln!("wrote {path} ({} spans)", sink.len());
    }
    cn_obs::trace::clear_global();
    println!("live_check: all gates passed");
}
