//! Scenario golden gate: identity inertness plus the canonical pins.
//!
//! ```text
//! cargo run --release -p cn-verify --bin scenario_check \
//!     [-- --specs-dir DIR] [--metrics obs.json]
//! ```
//!
//! Runs the three scenario gates over the standard golden config:
//!
//! * **identity** — the empty scenario must reproduce the `standard-v1`
//!   steady-state pin byte for byte on every engine (batch,
//!   sharded × {1,8}, out-of-core export);
//! * **flash-crowd** / **paging-storm** — the two canonical perturbed
//!   scenarios must be engine-consistent and match their own pins.
//!
//! `--specs-dir DIR` writes each canonical spec as JSON into `DIR`
//! (created if needed) so CI can archive the exact scenario definitions
//! the gate ran — the artifact to diff when a pin legitimately moves.
//! `--metrics PATH` writes a `cn-obs` snapshot including the
//! `cn_scenario_*` counter family of the gated runs. Exits non-zero when
//! any gate fails.

use cn_obs::{Registry, Span};
use cn_scenario::ScenarioSpec;
use cn_verify::{
    check_pinned, flash_crowd_spec, identity_spec, paging_storm_spec, run_scenario_golden,
    GroundTruth, PIN_FLASH_CROWD, PIN_IDENTITY, PIN_PAGING_STORM,
};

fn main() {
    let mut specs_dir: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--specs-dir" => specs_dir = Some(args.next().expect("--specs-dir needs a path")),
            "--metrics" => metrics = Some(args.next().expect("--metrics needs a path")),
            other => panic!("unknown argument: {other}"),
        }
    }
    let registry = if metrics.is_some() {
        Registry::new()
    } else {
        Registry::disabled()
    };

    let gt = GroundTruth::standard(11);
    let config = cn_verify::golden::standard_config();
    let gates: [(&str, ScenarioSpec); 3] = [
        (PIN_IDENTITY, identity_spec()),
        (PIN_FLASH_CROWD, flash_crowd_spec()),
        (PIN_PAGING_STORM, paging_storm_spec()),
    ];

    if let Some(dir) = &specs_dir {
        std::fs::create_dir_all(dir).expect("create specs dir");
        for (_, spec) in &gates {
            let path = std::path::Path::new(dir).join(format!("{}.json", spec.name));
            let json = serde_json::to_string_pretty(spec).expect("serialize spec");
            std::fs::write(&path, json + "\n").expect("write spec artifact");
            eprintln!("wrote {}", path.display());
        }
    }

    let mut all_ok = true;
    for (key, spec) in &gates {
        let span = Span::start(&registry, "cn_verify_scenario_ns");
        let report = run_scenario_golden(&gt.set, &config, spec, &registry);
        span.finish();
        println!("== scenario '{}' ==", spec.name);
        print!("{}", report.render());
        let ok = report.consistent
            && match report.hash() {
                Some(hash) => match check_pinned(key, hash) {
                    Ok(()) => {
                        println!("pinned hash matches ({key})");
                        true
                    }
                    Err(e) => {
                        println!("{e}");
                        false
                    }
                },
                None => false,
            };
        registry
            .gauge_with("cn_verify_gate_ok", &[("gate", key)])
            .set(u64::from(ok));
        all_ok &= ok;
    }

    if let Some(path) = &metrics {
        std::fs::write(path, registry.snapshot().to_json()).expect("write metrics snapshot");
        eprintln!("wrote metrics snapshot to {path}");
    }

    if all_ok {
        println!("scenario_check: all gates hold");
    } else {
        println!("scenario_check: FAILURES (see above)");
        std::process::exit(1);
    }
}
