//! Ground-truth model construction.
//!
//! Round-trip validation needs a model whose every parameter is known
//! exactly, so that the distributions recovered by re-fitting a generated
//! trace can be compared against their true counterparts. [`GroundTruth`]
//! builds a deliberately simple but fully-featured [`ModelSet`]: one
//! cluster, the same law in all 24 hours, all five top-level and all six
//! CONNECTED-side second-level transitions present, every sojourn law an
//! empirical CDF whose support — the hand-drawn sample vectors kept in
//! [`GroundTruth::top_samples`] / [`GroundTruth::bottom_samples`] — doubles
//! as the reference sample for the two-sample K–S comparison.
//!
//! Two deliberate design choices keep the round trip statistically clean:
//!
//! * **Top sojourns are long, bottom sojourns short** (minutes vs. ~tens of
//!   seconds). The generator arms second-level timers *conditioned on firing
//!   before the next top-level move* (competing risks, §5.3), which biases
//!   observed bottom sojourns low when the two time scales are close. With
//!   an order of magnitude between them the truncation bias is far below
//!   the K–S resolution at the harness's sample caps.
//! * **IDLE sub-states always exit** (`bottom_exit = 1.0`), so the idle
//!   sub-machine stays silent and the Fig. 5 starred edge (`TAU_S_IDLE`
//!   needs an `S1_CONN_REL` before `SRV_REQ` may leave IDLE) never injects
//!   generator-fabricated release events into the re-fit pools.

use std::collections::HashMap;

use cn_cluster::ClusterId;
use cn_fit::method::DistributionKind;
use cn_fit::{
    ClusterHourModel, DeviceModels, FirstEventModel, HourModels, Method, ModelSet, SemiMarkovModel,
};
use cn_statemachine::{BottomTransition, ConnSub, IdleSub, TlState, TopTransition};
use cn_trace::{DeviceType, EventType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fully known model plus the exact sample vectors its sojourn CDFs were
/// built from.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// The model set handed to the generator.
    pub set: ModelSet,
    /// Per top-level transition: the samples (seconds) behind its CDF.
    pub top_samples: HashMap<TopTransition, Vec<f64>>,
    /// Per second-level transition: the samples (seconds) behind its CDF.
    pub bottom_samples: HashMap<BottomTransition, Vec<f64>>,
}

/// Shifted-exponential sample vector: `min + Exp(mean_excess)`, `n` draws.
fn shifted_exp(rng: &mut StdRng, n: usize, min: f64, mean_excess: f64) -> Vec<f64> {
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            min - mean_excess * u.ln()
        })
        .collect()
}

impl GroundTruth {
    /// The standard single-cluster ground truth. Different seeds produce
    /// different (but equally valid) sample vectors; the same seed always
    /// produces bit-identical models.
    pub fn standard(seed: u64) -> GroundTruth {
        let mut rng = StdRng::seed_from_u64(seed);

        // Top level: sample counts encode the branch probabilities
        // (0.95/0.05 out of CONNECTED, 0.9/0.1 out of IDLE), sample values
        // the sojourn laws. All supports start ≥ 30 s — an order of
        // magnitude above the bottom-level time scale.
        let mut top_samples = HashMap::new();
        top_samples.insert(
            TopTransition::DeregToConn,
            shifted_exp(&mut rng, 2_000, 30.0, 150.0),
        );
        top_samples.insert(
            TopTransition::ConnToIdle,
            shifted_exp(&mut rng, 1_900, 90.0, 150.0),
        );
        top_samples.insert(
            TopTransition::ConnToDereg,
            shifted_exp(&mut rng, 100, 90.0, 300.0),
        );
        top_samples.insert(
            TopTransition::IdleToConn,
            shifted_exp(&mut rng, 1_800, 45.0, 180.0),
        );
        top_samples.insert(
            TopTransition::IdleToDereg,
            shifted_exp(&mut rng, 200, 45.0, 360.0),
        );

        // Bottom level: the six CONNECTED-side transitions, distinct means
        // so a swapped pool cannot pass by accident. No IDLE-side
        // transitions — the idle sub-machine is kept silent (see module
        // docs).
        let mut bottom_samples = HashMap::new();
        bottom_samples.insert(
            BottomTransition::SrvReqToHo,
            shifted_exp(&mut rng, 1_200, 2.0, 14.0),
        );
        bottom_samples.insert(
            BottomTransition::SrvReqToTauConn,
            shifted_exp(&mut rng, 800, 2.0, 20.0),
        );
        bottom_samples.insert(
            BottomTransition::HoToHo,
            shifted_exp(&mut rng, 700, 2.0, 12.0),
        );
        bottom_samples.insert(
            BottomTransition::HoToTauConn,
            shifted_exp(&mut rng, 700, 2.0, 18.0),
        );
        bottom_samples.insert(
            BottomTransition::TauConnToHo,
            shifted_exp(&mut rng, 600, 2.0, 16.0),
        );
        bottom_samples.insert(
            BottomTransition::TauConnToTauConn,
            shifted_exp(&mut rng, 600, 2.0, 22.0),
        );

        let top = SemiMarkovModel::fit(&top_samples, DistributionKind::EmpiricalCdf);
        let bottom = SemiMarkovModel::fit(&bottom_samples, DistributionKind::EmpiricalCdf);

        // Visits to a CONNECTED sub-state stay silent with these
        // probabilities; IDLE sub-states always exit (prob 1.0).
        let bottom_exit = vec![
            (TlState::Connected(ConnSub::SrvReqS), 0.45),
            (TlState::Connected(ConnSub::HoS), 0.50),
            (TlState::Connected(ConnSub::TauSConn), 0.50),
            (TlState::Idle(IdleSub::S1RelS1), 1.0),
            (TlState::Idle(IdleSub::TauSIdle), 1.0),
            (TlState::Idle(IdleSub::S1RelS2), 1.0),
        ];

        // Every UE's first event is an ATCH, uniformly placed in the hour,
        // and every UE is active (active_prob = 1): the generated
        // population boots deterministically into the machine.
        let firsts: Vec<(EventType, f64)> = (0..1_200)
            .map(|_| (EventType::Attach, rng.gen_range(0.0..3_600.0)))
            .collect();
        let first_event = FirstEventModel::fit(&firsts, 0);

        let chm = ClusterHourModel {
            top,
            bottom,
            bottom_exit,
            ho_interarrival: None,
            tau_interarrival: None,
            first_event,
            n_ues: 64,
        };

        let hours: Vec<HourModels> = (0..24)
            .map(|_| HourModels {
                clusters: vec![chm.clone()],
            })
            .collect();
        let personas = vec![[ClusterId(0); 24]; 16];
        let devices = DeviceType::ALL
            .into_iter()
            .map(|device| DeviceModels {
                device,
                personas: personas.clone(),
                hours: hours.clone(),
            })
            .collect();

        GroundTruth {
            set: ModelSet {
                method: Method::Ours,
                devices,
                n_days: 1,
            },
            top_samples,
            bottom_samples,
        }
    }

    /// The single cluster-hour model all (device, hour) slots share.
    pub fn cluster_hour(&self) -> &ClusterHourModel {
        &self.set.devices[0].hours[0].clusters[0]
    }

    /// True branch probability of a top-level transition, derived from the
    /// sample counts.
    pub fn top_prob(&self, t: TopTransition) -> f64 {
        let own = self.top_samples.get(&t).map_or(0, Vec::len);
        let total: usize = TopTransition::ALL
            .into_iter()
            .filter(|o| o.from() == t.from())
            .filter_map(|o| self.top_samples.get(&o).map(Vec::len))
            .sum();
        if total == 0 {
            0.0
        } else {
            own as f64 / total as f64
        }
    }

    /// True branch probability of a second-level transition.
    pub fn bottom_prob(&self, t: BottomTransition) -> f64 {
        let own = self.bottom_samples.get(&t).map_or(0, Vec::len);
        let total: usize = BottomTransition::ALL
            .into_iter()
            .filter(|o| o.from() == t.from())
            .filter_map(|o| self.bottom_samples.get(&o).map(Vec::len))
            .sum();
        if total == 0 {
            0.0
        } else {
            own as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_is_deterministic() {
        let a = GroundTruth::standard(7);
        let b = GroundTruth::standard(7);
        assert_eq!(a.set, b.set);
        let c = GroundTruth::standard(8);
        assert_ne!(a.set, c.set);
    }

    #[test]
    fn probabilities_match_sample_counts() {
        let gt = GroundTruth::standard(3);
        assert!((gt.top_prob(TopTransition::ConnToIdle) - 0.95).abs() < 1e-12);
        assert!((gt.top_prob(TopTransition::ConnToDereg) - 0.05).abs() < 1e-12);
        assert!((gt.top_prob(TopTransition::DeregToConn) - 1.0).abs() < 1e-12);
        assert!((gt.bottom_prob(BottomTransition::SrvReqToHo) - 0.6).abs() < 1e-12);
        // The fitted model agrees with the count-derived truth.
        for t in TopTransition::ALL {
            assert!(
                (gt.cluster_hour().top.prob(t) - gt.top_prob(t)).abs() < 1e-12,
                "{t:?}"
            );
        }
    }

    #[test]
    fn model_supports_separate_time_scales() {
        let gt = GroundTruth::standard(5);
        for (t, s) in &gt.top_samples {
            let min = s.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(min >= 30.0, "top {t:?} min {min}");
        }
        for (t, s) in &gt.bottom_samples {
            let max = s.iter().cloned().fold(0.0, f64::max);
            assert!(max < 300.0, "bottom {t:?} max {max}");
            let min = s.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(min >= 2.0, "bottom {t:?} min {min}");
        }
    }

    #[test]
    fn idle_substates_always_exit() {
        let gt = GroundTruth::standard(1);
        let chm = gt.cluster_hour();
        for sub in [IdleSub::S1RelS1, IdleSub::TauSIdle, IdleSub::S1RelS2] {
            assert_eq!(chm.exit_prob(TlState::Idle(sub)), Some(1.0));
        }
    }
}
