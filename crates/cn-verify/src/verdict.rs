//! Executable-claim verdicts.
//!
//! A [`Verdict`] states one checkable claim ("replay accepts 100% of
//! generated events"), the value actually measured, and whether the claim
//! held. A [`VerdictReport`] collects the verdicts of one validation run so
//! that test assertions, the `verify_model` binary, and `cn-eval`'s
//! paper-claims table all share one report shape.

use serde::{Deserialize, Serialize};

/// One executable claim with its measured value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Verdict {
    /// The claim being checked, stated as the expected behavior.
    pub claim: String,
    /// What was actually measured.
    pub measured: String,
    /// Whether the measurement satisfies the claim.
    pub pass: bool,
}

/// An ordered collection of verdicts from one validation run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerdictReport {
    /// What was validated (e.g. "round-trip recovery, seed 11").
    pub title: String,
    /// The individual verdicts, in check order.
    pub verdicts: Vec<Verdict>,
}

impl VerdictReport {
    /// An empty report.
    pub fn new(title: impl Into<String>) -> VerdictReport {
        VerdictReport {
            title: title.into(),
            verdicts: Vec::new(),
        }
    }

    /// Record one check and return whether it passed.
    pub fn check(
        &mut self,
        claim: impl Into<String>,
        measured: impl Into<String>,
        pass: bool,
    ) -> bool {
        self.verdicts.push(Verdict {
            claim: claim.into(),
            measured: measured.into(),
            pass,
        });
        pass
    }

    /// Number of verdicts recorded.
    pub fn len(&self) -> usize {
        self.verdicts.len()
    }

    /// True when no verdicts have been recorded.
    pub fn is_empty(&self) -> bool {
        self.verdicts.is_empty()
    }

    /// Number of passing verdicts.
    pub fn passed(&self) -> usize {
        self.verdicts.iter().filter(|v| v.pass).count()
    }

    /// True when every recorded verdict passed (vacuously true when empty).
    pub fn all_pass(&self) -> bool {
        self.verdicts.iter().all(|v| v.pass)
    }

    /// The verdicts that failed.
    pub fn failures(&self) -> impl Iterator<Item = &Verdict> {
        self.verdicts.iter().filter(|v| !v.pass)
    }

    /// Human-readable rendering: one `[PASS]`/`[FAIL]` line per verdict
    /// plus a summary line.
    pub fn render(&self) -> String {
        let claim_width = self
            .verdicts
            .iter()
            .map(|v| v.claim.len())
            .max()
            .unwrap_or(0);
        let mut out = format!("== {} ==\n", self.title);
        for v in &self.verdicts {
            let tag = if v.pass { "PASS" } else { "FAIL" };
            out.push_str(&format!(
                "[{tag}] {claim:<width$}  {measured}\n",
                claim = v.claim,
                width = claim_width,
                measured = v.measured,
            ));
        }
        out.push_str(&format!("{}/{} claims hold\n", self.passed(), self.len()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_records_and_reports() {
        let mut r = VerdictReport::new("demo");
        assert!(r.is_empty() && r.all_pass());
        assert!(r.check("a", "1", true));
        assert!(!r.check("b", "2", false));
        assert_eq!(r.len(), 2);
        assert_eq!(r.passed(), 1);
        assert!(!r.all_pass());
        assert_eq!(r.failures().count(), 1);
        let text = r.render();
        assert!(text.contains("[PASS] a"));
        assert!(text.contains("[FAIL] b"));
        assert!(text.contains("1/2 claims hold"));
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut r = VerdictReport::new("serde");
        r.check("claim", "measured", true);
        let json = serde_json::to_string(&r).unwrap();
        let back: VerdictReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
