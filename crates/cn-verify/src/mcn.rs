//! The closed-loop MCN gate: scenario engine → (live wire) → multi-NF
//! DES, with the numbers a capacity study would quote pinned in
//! `BENCH_mcn.json`.
//!
//! This module owns the pieces `mcn_check` assembles:
//!
//! * [`mcn_des_config`] — the canonical core-network shape the gate
//!   simulates: tight per-NF pools sized so the golden 40-UE workload's
//!   storm scenarios visibly congest them (nonzero shed, autoscaling
//!   events, measurable scaling lag) while the steady state clears;
//! * [`drive_des`] — feed any [`RecordSource`] through a [`DesSim`]:
//!   the same loop runs a batch `ScenarioStream` and a live TCP
//!   connection (`cn_live::LiveRecordSource`), which is what makes the
//!   closed-loop equivalence assertion possible at all;
//! * [`McnBench`] / [`check_bench_at`] — the pinned benchmark artifact:
//!   p99 latency, shed rate, and MME scaling lag per canonical
//!   scenario, compared *exactly* (the DES is deterministic) against
//!   the checked-in `BENCH_mcn.json`, re-blessable with
//!   `CN_MCN_BLESS=1`.

use std::path::{Path, PathBuf};

use cn_gen::StreamError;
use cn_mcn::{
    AdmissionPolicy, AutoscalePolicy, DesConfig, DesError, DesReport, DesSim, NetworkFunction,
    NfConfig, TransactionMatrix,
};
use cn_scenario::RecordSource;
use cn_stats::{Dist, LogNormal};
use serde::{Deserialize, Serialize};

/// A closed-loop run failed: either the record stream broke or the
/// simulator rejected its input.
#[derive(Debug, Clone, PartialEq)]
pub enum McnError {
    /// The source stream surfaced a typed fault (worker panic, consumer
    /// lag, wire corruption).
    Stream(StreamError),
    /// The simulator rejected the configuration or the input ordering.
    Des(DesError),
}

impl std::fmt::Display for McnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            McnError::Stream(e) => write!(f, "record stream failed: {e}"),
            McnError::Des(e) => write!(f, "DES rejected input: {e}"),
        }
    }
}

impl std::error::Error for McnError {}

/// The canonical core shape for the golden 40-UE workload.
///
/// Service medians are deliberately heavy (hundreds of milliseconds)
/// relative to the small golden population: the point of the gate is to
/// exercise the congestion machinery — the MME pool must breach its
/// watermark during the canonical storms (autoscaling + scaling-lag
/// numbers), and the admission bucket must actually shed (shed-rate
/// numbers) — while the steady state between storms clears completely.
pub fn mcn_des_config() -> DesConfig {
    let lognormal = |median_us: f64, sigma: f64| {
        Dist::LogNormal(LogNormal::from_median(median_us, sigma).expect("valid law"))
    };
    let pool = |nf, servers, service| NfConfig {
        nf,
        servers,
        service,
        autoscale: None,
    };
    DesConfig {
        seed: 0x4DC0_0001,
        nfs: vec![
            NfConfig {
                nf: NetworkFunction::Mme,
                servers: 1,
                service: lognormal(500_000.0, 0.5),
                autoscale: Some(AutoscalePolicy {
                    min_servers: 1,
                    max_servers: 6,
                    high_depth_per_server: 2.0,
                    low_depth_per_server: 0.5,
                    eval_every_ms: 1_000,
                    provision_ms: 1_500,
                }),
            },
            pool(NetworkFunction::Hss, 1, lognormal(450_000.0, 0.5)),
            pool(NetworkFunction::Pcrf, 1, lognormal(350_000.0, 0.5)),
            pool(NetworkFunction::Sgw, 1, lognormal(250_000.0, 0.4)),
            pool(NetworkFunction::Pgw, 1, lognormal(250_000.0, 0.4)),
        ],
        matrix: TransactionMatrix::default_epc(),
        admission: Some(AdmissionPolicy {
            rate_per_sec: 0.4,
            burst: 8.0,
            high_reserve: 0.3,
            critical_reserve: 0.1,
        }),
    }
}

/// Feed every record of `source` through `sim` and finish both sides.
/// Returns the report and the record count. The same loop drives a batch
/// `ScenarioStream` and a live `LiveRecordSource` — the closed-loop gate
/// asserts the two produce identical reports.
pub fn drive_des<S: RecordSource>(
    mut sim: DesSim,
    mut source: S,
) -> Result<(DesReport, u64), McnError> {
    let mut records = 0u64;
    while let Some(rec) = source.try_next().map_err(McnError::Stream)? {
        sim.offer(&rec).map_err(McnError::Des)?;
        records += 1;
    }
    source.finish().map_err(McnError::Stream)?;
    Ok((sim.finish(), records))
}

/// One canonical scenario's pinned closed-loop numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McnScenarioBench {
    /// Scenario name (`flash-crowd`, `paging-storm`).
    pub scenario: String,
    /// Records the scenario stream offered the simulator.
    pub offered: u64,
    /// Procedures that ran their full dependency chain.
    pub completed: u64,
    /// Shed fraction of offered records — the headline admission number.
    pub shed_rate: f64,
    /// Shed per priority class (Critical, High, Low).
    pub shed: [u64; 3],
    /// 99th-percentile end-to-end procedure latency, ms — the headline
    /// latency number.
    pub p99_latency_ms: f64,
    /// Mean end-to-end latency, ms.
    pub mean_latency_ms: f64,
    /// Maximum end-to-end latency, ms.
    pub max_latency_ms: f64,
    /// MME servers that came online during the run.
    pub mme_scale_ups: u64,
    /// Worst MME breach-to-online scaling lag, ms — the headline
    /// autoscaling number.
    pub mme_max_scaling_lag_ms: u64,
    /// MME pool utilization over the capacity integral.
    pub mme_utilization: f64,
}

impl McnScenarioBench {
    /// Project a [`DesReport`] onto the pinned shape.
    pub fn from_report(scenario: &str, report: &DesReport) -> McnScenarioBench {
        let mme = report
            .per_nf
            .iter()
            .find(|n| n.nf == NetworkFunction::Mme)
            .expect("MME pool configured");
        McnScenarioBench {
            scenario: scenario.to_string(),
            offered: report.offered,
            completed: report.completed,
            shed_rate: report.shed_rate,
            shed: report.shed,
            p99_latency_ms: report.p99_latency_ms,
            mean_latency_ms: report.mean_latency_ms,
            max_latency_ms: report.max_latency_ms,
            mme_scale_ups: mme.scale_ups,
            mme_max_scaling_lag_ms: mme.max_scaling_lag_ms,
            mme_utilization: mme.utilization,
        }
    }
}

/// The `BENCH_mcn.json` artifact: one entry per canonical scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McnBench {
    /// Human description of the workload the numbers came from.
    pub workload: String,
    /// Per-scenario closed-loop numbers, in gate order.
    pub scenarios: Vec<McnScenarioBench>,
}

/// Location of the pinned benchmark, at the repository root next to
/// `BENCH_gen.json`, so every caller resolves the same file.
pub fn bench_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("BENCH_mcn.json")
}

/// Compare `bench` against the pinned artifact, exactly — every number
/// in the file is a deterministic function of the golden seeds, so any
/// drift is a behavior change, not noise. With `bless`, the pin is
/// rewritten instead and the check passes.
pub fn check_bench_at(path: &Path, bench: &McnBench, bless: bool) -> Result<(), String> {
    let json = serde_json::to_string_pretty(bench).map_err(|e| e.to_string())? + "\n";
    if bless {
        std::fs::write(path, json).map_err(|e| e.to_string())?;
        return Ok(());
    }
    let pinned_raw = std::fs::read_to_string(path).map_err(|e| {
        format!(
            "no pinned MCN benchmark at {}: {e}. Run once with CN_MCN_BLESS=1 to record it.",
            path.display()
        )
    })?;
    let pinned: McnBench = serde_json::from_str(&pinned_raw)
        .map_err(|e| format!("pinned MCN benchmark unreadable: {e}"))?;
    if pinned == *bench {
        Ok(())
    } else {
        Err(format!(
            "MCN benchmark drifted from the pin in {}.\n--- pinned ---\n{}\n--- measured ---\n{json}\
             If the change is intentional, re-bless with CN_MCN_BLESS=1 (see TESTING.md).",
            path.display(),
            serde_json::to_string_pretty(&pinned).unwrap_or_default(),
        ))
    }
}

/// [`check_bench_at`] against [`bench_path`], blessing on `CN_MCN_BLESS`.
pub fn check_bench(bench: &McnBench) -> Result<(), String> {
    check_bench_at(
        &bench_path(),
        bench,
        std::env::var_os("CN_MCN_BLESS").is_some(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_scenario::IterSource;
    use cn_trace::{DeviceType, EventType, Timestamp, TraceRecord, UeId};

    #[test]
    fn canonical_des_config_validates() {
        mcn_des_config().validate().unwrap();
    }

    fn small_report() -> DesReport {
        let records: Vec<TraceRecord> = (0..40u64)
            .map(|i| {
                TraceRecord::new(
                    Timestamp::from_millis(i * 250),
                    UeId((i % 8) as u32),
                    DeviceType::Phone,
                    EventType::ServiceRequest,
                )
            })
            .collect();
        let sim = DesSim::new(mcn_des_config()).expect("valid config");
        let (report, n) = drive_des(sim, IterSource(records.into_iter())).expect("clean run");
        assert_eq!(n, 40);
        report
    }

    #[test]
    fn bench_round_trips_and_pins_exactly() {
        let bench = McnBench {
            workload: "test".into(),
            scenarios: vec![McnScenarioBench::from_report("small", &small_report())],
        };
        let dir = std::env::temp_dir().join(format!("cn-mcn-bench-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_mcn.json");
        // Missing pin fails closed.
        assert!(check_bench_at(&path, &bench, false).is_err());
        // Bless, then the same numbers pass...
        check_bench_at(&path, &bench, true).unwrap();
        check_bench_at(&path, &bench, false).unwrap();
        // ...and any drift fails with both sides rendered.
        let mut drifted = bench.clone();
        drifted.scenarios[0].p99_latency_ms += 0.001;
        let err = check_bench_at(&path, &drifted, false).unwrap_err();
        assert!(err.contains("drifted"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drive_des_is_deterministic() {
        let a = small_report();
        let b = small_report();
        assert_eq!(a, b);
    }
}
