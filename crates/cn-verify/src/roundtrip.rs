//! The statistical round trip: model → generate → replay → re-fit → compare.
//!
//! [`run_round_trip`] closes the loop the paper's §7 validation implies but
//! never states as one executable check:
//!
//! 1. generate a seeded population from a [`GroundTruth`] model;
//! 2. replay every event through the two-level machine
//!    ([`cn_statemachine::replay_trace`]) and demand **zero** violations —
//!    the generator must never emit an illegal event;
//! 3. re-fit per-transition sojourn laws from the replay's pooled sojourn
//!    samples ([`SemiMarkovModel::fit`]), exactly as the fitting pipeline
//!    would on a real trace;
//! 4. compare each re-fitted branch against its ground-truth counterpart:
//!    the two-sample K–S test at significance [`RoundTripConfig::alpha`]
//!    for the sojourn law, an absolute tolerance band for the branch
//!    probability.
//!
//! Observed samples are capped per transition (`max_ks_samples`) before the
//! K–S test: with hundreds of thousands of samples the test would otherwise
//! resolve harmless mechanical quantization (the generator's strictly-
//! increasing millisecond timestamps) as a significant difference. The cap
//! bounds test power at the level the tolerance analysis in
//! [`crate::model`] was designed for.

use std::collections::HashMap;

use cn_fit::method::DistributionKind;
use cn_fit::SemiMarkovModel;
use cn_gen::{generate, GenConfig};
use cn_statemachine::replay::replay_trace;
use cn_stats::{two_sample_critical_distance, two_sample_test, KsOutcome};
use cn_trace::{PopulationMix, Timestamp};
use serde::{Deserialize, Serialize};

use crate::model::GroundTruth;
use crate::verdict::VerdictReport;

/// Parameters of one round-trip run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundTripConfig {
    /// Synthesized population.
    pub population: PopulationMix,
    /// Start of the synthesis window.
    pub start: Timestamp,
    /// Length of the synthesis window in hours.
    pub duration_hours: f64,
    /// Generator seed.
    pub seed: u64,
    /// Significance level of the per-transition two-sample K–S gates.
    pub alpha: f64,
    /// Absolute tolerance on re-fitted branch probabilities.
    pub prob_tolerance: f64,
    /// Cap on the observed-sample count entering each K–S test.
    pub max_ks_samples: usize,
    /// Minimum observed samples for a transition's gates to be meaningful;
    /// fewer observations fail the check outright.
    pub min_samples: usize,
}

impl RoundTripConfig {
    fn sized(population: PopulationMix, duration_hours: f64, seed: u64) -> RoundTripConfig {
        RoundTripConfig {
            population,
            start: Timestamp::at_hour(0, 8),
            duration_hours,
            seed,
            alpha: 0.01,
            prob_tolerance: 0.05,
            max_ks_samples: 4_000,
            min_samples: 100,
        }
    }

    /// Small run for unit tests: 260 UEs over 2 hours.
    pub fn quick(seed: u64) -> RoundTripConfig {
        RoundTripConfig::sized(PopulationMix::new(160, 60, 40), 2.0, seed)
    }

    /// Acceptance-scale run: 2,000 UEs over 6 hours.
    pub fn acceptance(seed: u64) -> RoundTripConfig {
        RoundTripConfig::sized(PopulationMix::new(1_200, 500, 300), 6.0, seed)
    }

    /// Deep run for the `verify_model` binary: 5,000 UEs over 12 hours.
    pub fn deep(seed: u64) -> RoundTripConfig {
        RoundTripConfig::sized(PopulationMix::new(3_000, 1_200, 800), 12.0, seed)
    }
}

/// The comparison of one re-fitted transition against its ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitionCheck {
    /// Transition label (e.g. `CONNECTED-S1_CONN_REL`, `SRV_REQ_S-HO`).
    pub label: String,
    /// `"top"` or `"bottom"`.
    pub level: String,
    /// Observed (replayed) sojourn samples for this transition.
    pub n_observed: usize,
    /// Ground-truth samples for this transition.
    pub n_truth: usize,
    /// True branch probability.
    pub prob_truth: f64,
    /// Re-fitted branch probability.
    pub prob_refit: f64,
    /// Two-sample K–S outcome (`None` when there were no observations).
    /// Its `n` is the *effective* size `n·m/(n+m)` the p-value was computed
    /// from, not `n_observed` or `n_truth`.
    pub ks: Option<KsOutcome>,
    /// Critical K–S distance at the configured `alpha` for the compared
    /// sample sizes — the margin the statistic was measured against.
    pub critical_d: Option<f64>,
    /// Whether the sojourn law passed its K–S gate.
    pub ks_pass: bool,
    /// Whether the branch probability landed inside the tolerance band.
    pub prob_pass: bool,
}

impl TransitionCheck {
    /// Both gates hold.
    pub fn pass(&self) -> bool {
        self.ks_pass && self.prob_pass
    }
}

/// Everything one round trip measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundTripReport {
    /// The configuration that produced this report.
    pub config: RoundTripConfig,
    /// Events in the generated trace.
    pub generated_events: usize,
    /// UEs that emitted at least one event.
    pub active_ues: usize,
    /// Replay violations (must be 0 for conformance).
    pub violations: usize,
    /// Fraction of generated events the machine accepted.
    pub acceptance_rate: f64,
    /// `(state × event, count)` of rejections, most frequent first.
    pub rejection_histogram: Vec<(String, usize)>,
    /// Per-transition recovery checks.
    pub checks: Vec<TransitionCheck>,
    /// The verdict rows (conformance + one per transition).
    pub report: VerdictReport,
}

impl RoundTripReport {
    /// True when conformance held and every transition check passed.
    pub fn all_pass(&self) -> bool {
        self.report.all_pass()
    }
}

/// Deterministically thin `v` to at most `cap` entries (evenly strided in
/// generation order, which is exchangeable for i.i.d. sojourn draws).
fn thin(v: &[f64], cap: usize) -> Vec<f64> {
    if v.len() <= cap {
        return v.to_vec();
    }
    let stride = v.len() as f64 / cap as f64;
    (0..cap).map(|i| v[(i as f64 * stride) as usize]).collect()
}

/// Run the full round trip against a ground-truth model.
pub fn run_round_trip(gt: &GroundTruth, cfg: &RoundTripConfig) -> RoundTripReport {
    let gen_config = GenConfig::new(cfg.population, cfg.start, cfg.duration_hours, cfg.seed);
    let trace = generate(&gt.set, &gen_config);
    let replay = replay_trace(trace.records());

    let mut report = VerdictReport::new(format!(
        "round trip: {} UEs, {:.1} h, seed {}, alpha {}",
        cfg.population.total(),
        cfg.duration_hours,
        cfg.seed,
        cfg.alpha,
    ));

    report.check(
        "generator produced a non-trivial trace",
        format!("{} events from {} UEs", trace.len(), replay.ue_count),
        !trace.is_empty() && replay.ue_count > 0,
    );
    report.check(
        "conformance: replay accepts 100% of generated events",
        format!(
            "{}/{} accepted ({} violations)",
            replay.accepted_events(),
            replay.total_events,
            replay.violations.len()
        ),
        replay.is_conformant(),
    );

    // Pool sojourns per transition, exactly as the fitting pipeline would.
    let mut top_pool: HashMap<_, Vec<f64>> = HashMap::new();
    for s in &replay.top_sojourns {
        top_pool
            .entry(s.transition)
            .or_default()
            .push(s.duration_ms as f64 / 1_000.0);
    }
    let mut bottom_pool: HashMap<_, Vec<f64>> = HashMap::new();
    for s in &replay.bottom_sojourns {
        bottom_pool
            .entry(s.transition)
            .or_default()
            .push(s.duration_ms as f64 / 1_000.0);
    }
    let refit_top = SemiMarkovModel::fit(&top_pool, DistributionKind::EmpiricalCdf);
    let refit_bottom = SemiMarkovModel::fit(&bottom_pool, DistributionKind::EmpiricalCdf);

    let mut checks = Vec::new();
    let empty: Vec<f64> = Vec::new();
    let mut top_keys: Vec<_> = gt.top_samples.keys().copied().collect();
    top_keys.sort();
    for t in top_keys {
        let truth = &gt.top_samples[&t];
        let observed = top_pool.get(&t).unwrap_or(&empty);
        checks.push(check_transition(
            cfg,
            format!("{t}"),
            "top",
            observed,
            truth,
            gt.top_prob(t),
            refit_top.prob(t),
        ));
    }
    let mut bottom_keys: Vec<_> = gt.bottom_samples.keys().copied().collect();
    bottom_keys.sort();
    for t in bottom_keys {
        let truth = &gt.bottom_samples[&t];
        let observed = bottom_pool.get(&t).unwrap_or(&empty);
        checks.push(check_transition(
            cfg,
            t.label().to_string(),
            "bottom",
            observed,
            truth,
            gt.bottom_prob(t),
            refit_bottom.prob(t),
        ));
    }

    for c in &checks {
        let measured = match (&c.ks, c.critical_d) {
            (Some(ks), Some(crit)) => format!(
                "D={:.4} (crit {:.4}), p={:.3}, prob {:.3} vs {:.3}, n={}/{} (eff {})",
                ks.statistic,
                crit,
                ks.p_value,
                c.prob_refit,
                c.prob_truth,
                c.n_observed,
                c.n_truth,
                ks.n
            ),
            _ => format!(
                "only {} observed samples (need {})",
                c.n_observed, cfg.min_samples
            ),
        };
        report.check(
            format!(
                "{} sojourn law and probability recovered ({})",
                c.label, c.level
            ),
            measured,
            c.pass(),
        );
    }

    RoundTripReport {
        config: cfg.clone(),
        generated_events: trace.len(),
        active_ues: replay.ue_count,
        violations: replay.violations.len(),
        acceptance_rate: replay.acceptance_rate(),
        rejection_histogram: replay
            .rejection_histogram()
            .into_iter()
            .map(|((state, event), n)| (format!("{} x {}", state.label(), event.mnemonic()), n))
            .collect(),
        checks,
        report,
    }
}

fn check_transition(
    cfg: &RoundTripConfig,
    label: String,
    level: &str,
    observed: &[f64],
    truth: &[f64],
    prob_truth: f64,
    prob_refit: f64,
) -> TransitionCheck {
    let enough = observed.len() >= cfg.min_samples;
    let thinned = thin(observed, cfg.max_ks_samples);
    let ks = if enough {
        two_sample_test(&thinned, truth)
    } else {
        None
    };
    let critical_d = if enough {
        two_sample_critical_distance(cfg.alpha, thinned.len(), truth.len())
    } else {
        None
    };
    let ks_pass = ks.is_some_and(|o| o.passes(cfg.alpha));
    let prob_pass = enough && (prob_refit - prob_truth).abs() <= cfg.prob_tolerance;
    TransitionCheck {
        label,
        level: level.to_string(),
        n_observed: observed.len(),
        n_truth: truth.len(),
        prob_truth,
        prob_refit,
        ks,
        critical_d,
        ks_pass,
        prob_pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thin_preserves_small_and_caps_large() {
        let v: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(thin(&v, 20), v);
        let t = thin(&v, 4);
        assert_eq!(t.len(), 4);
        assert_eq!(t[0], 0.0);
        // Strictly increasing stride over a sorted input.
        assert!(t.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn config_presets_scale() {
        assert_eq!(RoundTripConfig::quick(1).population.total(), 260);
        assert_eq!(RoundTripConfig::acceptance(1).population.total(), 2_000);
        assert_eq!(RoundTripConfig::deep(1).population.total(), 5_000);
        assert_eq!(RoundTripConfig::acceptance(1).alpha, 0.01);
    }
}
