//! Quick-scale integration tests of the verification harness itself.
//!
//! The acceptance-scale round trip (2,000 UEs over 6 hours) lives in the
//! workspace root's `tests/round_trip.rs`; here the same machinery runs at
//! a size suited to the inner development loop.

use cn_verify::{
    check_pinned, run_golden, run_golden_observed, run_round_trip, GroundTruth, RoundTripConfig,
};

#[test]
fn quick_round_trip_recovers_the_model() {
    let gt = GroundTruth::standard(11);
    let report = run_round_trip(&gt, &RoundTripConfig::quick(911));
    assert_eq!(
        report.violations,
        0,
        "replay rejected events:\n{}",
        report.report.render()
    );
    assert_eq!(report.acceptance_rate, 1.0);
    // All 11 ground-truth transitions (5 top + 6 bottom) were observed and
    // checked.
    assert_eq!(report.checks.len(), 11);
    assert!(report.all_pass(), "{}", report.report.render());
}

#[test]
fn round_trip_is_deterministic() {
    let gt = GroundTruth::standard(11);
    let cfg = RoundTripConfig::quick(4242);
    let a = run_round_trip(&gt, &cfg);
    let b = run_round_trip(&gt, &cfg);
    assert_eq!(a, b);
    // A different generator seed draws a different trace.
    let c = run_round_trip(&gt, &RoundTripConfig::quick(4243));
    assert_ne!(a.generated_events, 0);
    assert_ne!(
        serde_json::to_string(&a.checks).unwrap(),
        serde_json::to_string(&c.checks).unwrap()
    );
}

#[test]
fn golden_hashes_agree_across_engines_and_match_the_pin() {
    let gt = GroundTruth::standard(11);
    let report = run_golden(&gt.set, &cn_verify::golden::standard_config());
    // batch × threads {1,4}, stream, sharded × shards {1,8}, and the
    // out-of-core exporter with all-memory and spill-everything budgets.
    assert_eq!(report.cases.len(), 7);
    assert!(report.consistent, "{}", report.render());
    // Explicit workload-size accounting: a hash agreement over truncated
    // traces would be meaningless, so every engine must also have drained
    // the full (non-empty) workload.
    let expected = report.cases[0].events;
    assert!(expected > 0, "golden workload must not be empty");
    for c in &report.cases {
        assert_eq!(
            c.events, expected,
            "{} (threads={} shards={}) drained a different workload",
            c.engine, c.threads, c.shards
        );
    }
    let hash = report.hash().expect("consistent");
    check_pinned("standard-v1", hash).unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn observed_golden_run_is_identical_and_keeps_a_balanced_ledger() {
    let gt = GroundTruth::standard(11);
    let config = cn_verify::golden::standard_config();
    let registry = cn_obs::Registry::new();
    let observed = run_golden_observed(&gt.set, &config, &registry);
    // Instrumentation must be inert: the observed run reproduces the
    // unobserved hashes byte for byte.
    assert_eq!(observed, run_golden(&gt.set, &config));
    let events = observed.cases[0].events as u64;
    assert!(events > 0, "golden workload must not be empty");
    // Every case drained the same, full workload (also enforced inside
    // run_golden_observed, and folded into `consistent`).
    assert!(observed.cases.iter().all(|c| c.events as u64 == events));
    let snap = registry.snapshot();
    // Two sharded cases (shards 1 and 8) drained through the merge; only
    // the 8-shard case runs parallel workers with per-shard counters.
    assert_eq!(snap.counter("cn_gen_merge_events_total"), Some(2 * events));
    assert_eq!(
        snap.counter_total("cn_gen_shard_events_total"),
        Some(events)
    );
    // Failure telemetry for a clean gate: all eight workers of the 8-shard
    // case exited `completed`; nothing panicked or was cancelled.
    let outcome = |o: &str| {
        snap.get("cn_gen_worker_exit", &[("outcome", o)])
            .map(|m| match m.value {
                cn_obs::MetricValue::Counter { value } => value,
                _ => panic!("worker exit must be a counter"),
            })
    };
    assert_eq!(outcome("completed"), Some(8));
    assert_eq!(outcome("panicked"), None);
    assert_eq!(outcome("cancelled"), None);
    assert_eq!(snap.counter_total("cn_gen_shard_panics_total"), None);
}

#[test]
fn a_corrupted_trace_fails_conformance() {
    use cn_statemachine::replay::replay_trace;
    use cn_trace::{DeviceType, EventType, Timestamp, TraceRecord, UeId};
    // HO while deregistered is illegal in the two-level machine.
    let records = vec![
        TraceRecord::new(
            Timestamp::from_secs(1),
            UeId(0),
            DeviceType::Phone,
            EventType::Attach,
        ),
        TraceRecord::new(
            Timestamp::from_secs(2),
            UeId(0),
            DeviceType::Phone,
            EventType::Detach,
        ),
        TraceRecord::new(
            Timestamp::from_secs(3),
            UeId(0),
            DeviceType::Phone,
            EventType::Handover,
        ),
    ];
    let replay = replay_trace(&records);
    assert!(!replay.is_conformant());
    assert_eq!(replay.violations.len(), 1);
    assert!(replay.acceptance_rate() < 1.0);
}
