//! The scenario metamorphic suite: golden pins plus the confinement and
//! determinism properties from the scenario engine's contract.
//!
//! Three claims, all over the standard golden config:
//!
//! * **identity** — the empty scenario reproduces the `standard-v1`
//!   steady-state pin byte for byte on every engine;
//! * **confinement** — for arbitrary valid two-phase scenarios, records
//!   outside every phase window are *verbatim* the unperturbed trace, and
//!   the in-window multiset delta (injections positive, outage
//!   suppressions negative) is confined to the declaring phase's window
//!   and UE subset;
//! * **determinism** — a scenario replays identically per seed,
//!   independent of engine and shard count.

use std::collections::BTreeMap;

use cn_gen::{generate, ShardedStream};
use cn_obs::Registry;
use cn_scenario::{
    apply_scenario, Phase, PhaseKind, ScenarioSpec, ScenarioStream, StormKind, TimeWindow, UeSubset,
};
use cn_trace::{DeviceType, Trace, TraceRecord};
use cn_verify::golden::standard_config;
use cn_verify::{
    check_pinned, flash_crowd_spec, identity_spec, paging_storm_spec, run_scenario_golden,
    GroundTruth, PIN_FLASH_CROWD, PIN_IDENTITY, PIN_PAGING_STORM,
};
use proptest::prelude::*;

#[test]
fn identity_scenario_reproduces_the_steady_state_pin() {
    let gt = GroundTruth::standard(11);
    let report = run_scenario_golden(
        &gt.set,
        &standard_config(),
        &identity_spec(),
        &Registry::disabled(),
    );
    // scenario-batch, scenario-sharded × {1,8}, scenario-outofcore.
    assert_eq!(report.cases.len(), 4);
    assert!(report.consistent, "{}", report.render());
    // The identity overlay must be byte-inert: same pin as the plain
    // steady-state golden gate, not merely internally consistent.
    let hash = report.hash().expect("consistent");
    check_pinned(PIN_IDENTITY, hash).unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn canonical_scenarios_match_their_pins() {
    let gt = GroundTruth::standard(11);
    let config = standard_config();
    for (spec, key) in [
        (flash_crowd_spec(), PIN_FLASH_CROWD),
        (paging_storm_spec(), PIN_PAGING_STORM),
    ] {
        let report = run_scenario_golden(&gt.set, &config, &spec, &Registry::disabled());
        assert!(report.consistent, "{}:\n{}", spec.name, report.render());
        let hash = report.hash().expect("consistent");
        check_pinned(key, hash).unwrap_or_else(|e| panic!("{e}"));
    }
}

#[test]
fn canonical_scenarios_emit_their_counter_families() {
    let gt = GroundTruth::standard(11);
    let config = standard_config();
    let registry = Registry::new();
    let (_, stats) = apply_scenario(&paging_storm_spec(), &gt.set, &config, &registry).unwrap();
    assert!(stats.injected > 0, "storm injected nothing");
    assert!(stats.suppressed > 0, "outage suppressed nothing");
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter_total("cn_scenario_injected_total"),
        Some(stats.injected)
    );
    assert_eq!(
        snap.counter_total("cn_scenario_suppressed_total"),
        Some(stats.suppressed)
    );
    assert!(snap
        .get(
            "cn_scenario_suppressed_total",
            &[("phase", "site-down"), ("kind", "outage")]
        )
        .is_some());
}

// ---------------------------------------------------------------------------
// Arbitrary valid scenarios for the metamorphic properties.
// ---------------------------------------------------------------------------

/// A subset within the standard 40-UE population.
fn arb_subset() -> impl Strategy<Value = UeSubset> {
    (0u32..34, 1u32..7).prop_map(|(lo, len)| UeSubset::new(lo, (lo + len).min(40)))
}

fn arb_storm_kind() -> impl Strategy<Value = StormKind> {
    prop_oneof![
        Just(StormKind::Paging),
        Just(StormKind::Reestablishment),
        Just(StormKind::TauFlood),
    ]
}

fn arb_kind() -> impl Strategy<Value = PhaseKind> {
    prop_oneof![
        (arb_subset(), 1u32..5, 0u32..4).prop_map(|(ues, waves, handovers_per_ue)| {
            PhaseKind::FlashCrowd {
                ues,
                waves,
                handovers_per_ue,
            }
        }),
        (arb_subset(), arb_storm_kind(), 1u32..6).prop_map(|(ues, kind, bursts_per_ue)| {
            PhaseKind::SignalingStorm {
                ues,
                kind,
                bursts_per_ue,
            }
        }),
        arb_subset().prop_map(|ues| PhaseKind::Outage { ues }),
        (arb_subset(), 20u32..400).prop_map(|(ues, period)| PhaseKind::M2mReporting {
            ues,
            period_s: f64::from(period),
            device: DeviceType::Tablet,
        }),
    ]
}

/// Two phases with structurally disjoint windows inside the standard
/// 2-hour run: the first in the first hour, the second in the second.
fn arb_spec() -> impl Strategy<Value = ScenarioSpec> {
    (
        0u64..1_000,
        (0u32..3_000, 30u32..600, arb_kind()),
        (3_700u32..6_600, 30u32..600, arb_kind()),
    )
        .prop_map(|(seed, (s1, d1, k1), (s2, d2, k2))| ScenarioSpec {
            name: "arb".into(),
            seed,
            phases: vec![
                Phase {
                    name: "p0".into(),
                    window: TimeWindow::new(f64::from(s1), f64::from(d1)),
                    kind: k1,
                },
                Phase {
                    name: "p1".into(),
                    window: TimeWindow::new(f64::from(s2), f64::from(d2.min(6_900 - s2))),
                    kind: k2,
                },
            ],
        })
}

fn multiset(trace: &Trace) -> BTreeMap<TraceRecord, i64> {
    let mut m = BTreeMap::new();
    for r in trace.iter() {
        *m.entry(*r).or_insert(0) += 1;
    }
    m
}

/// True when `rec` falls in `phase`'s resolved window and UE subset.
fn in_phase(rec: &TraceRecord, phase: &Phase, config: &cn_gen::GenConfig) -> bool {
    let t = rec.t.as_millis();
    phase.window.start_ms(config.start) <= t
        && t < phase.window.end_ms(config.start)
        && phase.kind.ues().contains(rec.ue.get())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (b) of the metamorphic contract: every perturbation is confined to
    /// its declared window and subset; everything else is untouched.
    #[test]
    fn perturbations_are_confined_to_their_phase(spec in arb_spec()) {
        let gt = GroundTruth::standard(11);
        let config = standard_config();
        spec.validate().unwrap();
        let baseline = generate(&gt.set, &config);
        let (out, stats) =
            apply_scenario(&spec, &gt.set, &config, &Registry::disabled()).unwrap();

        // Records outside *every* phase window are a verbatim subsequence:
        // filtering both traces to outside-window instants yields equal
        // sequences.
        let outside = |t: &Trace| -> Vec<TraceRecord> {
            t.iter()
                .filter(|r| {
                    spec.phases.iter().all(|p| {
                        let ms = r.t.as_millis();
                        ms < p.window.start_ms(config.start)
                            || ms >= p.window.end_ms(config.start)
                    })
                })
                .copied()
                .collect()
        };
        prop_assert_eq!(outside(&out), outside(&baseline));

        // The multiset delta is confined: every injected record lies in a
        // non-outage phase's window+subset, every suppressed record in an
        // outage phase's window+subset.
        let base_counts = multiset(&baseline);
        let out_counts = multiset(&out);
        let mut injected = 0u64;
        let mut suppressed = 0u64;
        let keys: std::collections::BTreeSet<_> =
            base_counts.keys().chain(out_counts.keys()).collect();
        for rec in keys {
            let delta = out_counts.get(rec).copied().unwrap_or(0)
                - base_counts.get(rec).copied().unwrap_or(0);
            if delta > 0 {
                injected += delta as u64;
                prop_assert!(
                    spec.phases.iter().any(|p| {
                        !matches!(p.kind, PhaseKind::Outage { .. }) && in_phase(rec, p, &config)
                    }),
                    "injected record escaped its phase: {rec:?}"
                );
            } else if delta < 0 {
                suppressed += (-delta) as u64;
                prop_assert!(
                    spec.phases.iter().any(|p| {
                        matches!(p.kind, PhaseKind::Outage { .. }) && in_phase(rec, p, &config)
                    }),
                    "suppressed record outside every outage phase: {rec:?}"
                );
            }
        }
        prop_assert_eq!(stats.injected, injected);
        prop_assert_eq!(stats.suppressed, suppressed);
        prop_assert!(cn_trace::check_well_formed(&out).is_empty());
    }

    /// (c) of the metamorphic contract: replay determinism per seed,
    /// across engines and shard counts.
    #[test]
    fn scenarios_replay_deterministically(spec in arb_spec()) {
        let gt = GroundTruth::standard(11);
        let config = standard_config();
        let registry = Registry::disabled();
        let (a, _) = apply_scenario(&spec, &gt.set, &config, &registry).unwrap();
        let (b, _) = apply_scenario(&spec, &gt.set, &config, &registry).unwrap();
        prop_assert_eq!(&a, &b);
        for shards in [1usize, 8] {
            let source = ShardedStream::with_shards(&gt.set, &config, shards);
            let stream = ScenarioStream::new(&spec, &config, source, &registry).unwrap();
            let (sharded, _) = stream.collect_trace().unwrap();
            prop_assert_eq!(&sharded, &a, "shards={} diverged", shards);
        }
    }
}
