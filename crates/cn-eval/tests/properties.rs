//! Property-based tests for the evaluation metrics.

use cn_eval::breakdown::{breakdown, breakdown_simple, BreakdownRow};
use cn_eval::microscopic::{device_range, events_per_ue, split_active};
use cn_trace::{DeviceType, EventType, PopulationMix, Timestamp, Trace, TraceRecord, UeId};
use proptest::prelude::*;

fn arb_trace(max_ue: u32) -> impl Strategy<Value = Trace> {
    prop::collection::vec((0u64..3_600_000, 0u32..64, 0u8..6), 0..300).prop_map(move |recs| {
        Trace::from_records(
            recs.into_iter()
                .map(|(t, ue, e)| {
                    let ue = ue % max_ue.max(1);
                    // Device follows a fixed layout so per-UE device
                    // types stay consistent.
                    let device = match ue % 3 {
                        0 => DeviceType::Phone,
                        1 => DeviceType::ConnectedCar,
                        _ => DeviceType::Tablet,
                    };
                    TraceRecord::new(
                        Timestamp::from_millis(t),
                        UeId(ue),
                        device,
                        EventType::from_code(e).unwrap(),
                    )
                })
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Context-attributed breakdown shares always sum to 1 (or all-zero)
    /// and every share is a valid probability.
    #[test]
    fn breakdown_shares_are_a_distribution(trace in arb_trace(48)) {
        for device in DeviceType::ALL {
            let b = breakdown(&trace, device);
            let sum: f64 = b.shares.iter().sum();
            if b.total == 0 {
                prop_assert_eq!(sum, 0.0);
            } else {
                prop_assert!((sum - 1.0).abs() < 1e-9, "sum {}", sum);
            }
            for s in b.shares {
                prop_assert!((0.0..=1.0).contains(&s));
            }
        }
    }

    /// The context split is consistent with the simple breakdown: summing
    /// HO(CONN)+HO(IDLE) gives the HO share, TAU likewise.
    #[test]
    fn context_split_sums_to_simple(trace in arb_trace(48)) {
        for device in DeviceType::ALL {
            let b = breakdown(&trace, device);
            let s = breakdown_simple(&trace.filter_device(device), device);
            if b.total > 0 {
                let ho = b.share(BreakdownRow::HoConn) + b.share(BreakdownRow::HoIdle);
                prop_assert!((ho - s[EventType::Handover.code() as usize]).abs() < 1e-9);
                let tau = b.share(BreakdownRow::TauConn) + b.share(BreakdownRow::TauIdle);
                prop_assert!((tau - s[EventType::Tau.code() as usize]).abs() < 1e-9);
            }
        }
    }

    /// Per-UE count vectors cover the whole device population and total to
    /// the device's event count.
    #[test]
    fn events_per_ue_accounts_for_everything(trace in arb_trace(30)) {
        let mix = PopulationMix::new(10, 10, 10);
        for device in DeviceType::ALL {
            let range = device_range(&mix, device);
            for event in EventType::ALL {
                let counts = events_per_ue(&trace, &mix, device, event);
                prop_assert_eq!(counts.len(), range.len());
                let total: f64 = counts.iter().sum();
                let expected = trace
                    .iter()
                    .filter(|r| r.event == event && range.contains(&r.ue.get()))
                    .count() as f64;
                prop_assert_eq!(total, expected);
            }
        }
    }

    /// The activity split is a partition at any threshold.
    #[test]
    fn split_active_partitions(
        counts in prop::collection::vec(0.0f64..50.0, 0..100),
        threshold in 0.0f64..10.0,
    ) {
        let (inactive, active) = split_active(&counts, threshold);
        prop_assert_eq!(inactive.len() + active.len(), counts.len());
        prop_assert!(inactive.iter().all(|&c| c <= threshold));
        prop_assert!(active.iter().all(|&c| c > threshold));
    }
}
