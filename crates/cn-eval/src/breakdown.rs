//! Macroscopic event breakdowns with ECM-context attribution.
//!
//! Tables 4/11 split `HO` and `TAU` by the ECM state they fired in: a
//! correct model only produces `HO` in CONNECTED, while the EMM–ECM
//! baselines leak large `HO (IDLE)` shares. Context is attributed by
//! replaying each UE's stream (`cn-statemachine::replay` tolerates the
//! baselines' protocol violations and still reports the state each event
//! fired in).

use cn_statemachine::{replay_ue, TopState};
use cn_trace::{DeviceType, EventType, Trace};
use serde::{Deserialize, Serialize};

/// The eight rows of Tables 4/11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BreakdownRow {
    /// `ATCH`.
    Atch,
    /// `DTCH`.
    Dtch,
    /// `SRV_REQ`.
    SrvReq,
    /// `S1_CONN_REL`.
    S1ConnRel,
    /// `HO` fired in ECM-CONNECTED.
    HoConn,
    /// `HO` fired in ECM-IDLE (or deregistered) — a protocol violation.
    HoIdle,
    /// `TAU` fired in ECM-CONNECTED.
    TauConn,
    /// `TAU` fired in ECM-IDLE.
    TauIdle,
}

impl BreakdownRow {
    /// All eight rows in table order.
    pub const ALL: [BreakdownRow; 8] = [
        BreakdownRow::Atch,
        BreakdownRow::Dtch,
        BreakdownRow::SrvReq,
        BreakdownRow::S1ConnRel,
        BreakdownRow::HoConn,
        BreakdownRow::HoIdle,
        BreakdownRow::TauConn,
        BreakdownRow::TauIdle,
    ];

    /// The paper's row label.
    pub fn label(self) -> &'static str {
        match self {
            BreakdownRow::Atch => "ATCH",
            BreakdownRow::Dtch => "DTCH",
            BreakdownRow::SrvReq => "SRV_REQ",
            BreakdownRow::S1ConnRel => "S1_CONN_REL",
            BreakdownRow::HoConn => "HO (CONN.)",
            BreakdownRow::HoIdle => "HO (IDLE)",
            BreakdownRow::TauConn => "TAU (CONN.)",
            BreakdownRow::TauIdle => "TAU (IDLE)",
        }
    }

    /// Index in [`Breakdown::shares`].
    pub const fn index(self) -> usize {
        self as usize
    }
}

/// Event-share breakdown of one device type's traffic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Breakdown {
    /// Share of each [`BreakdownRow`], summing to 1 (all zero when the
    /// trace holds no events of this device type).
    pub shares: [f64; 8],
    /// Total events counted.
    pub total: usize,
}

impl Breakdown {
    /// Share of one row.
    pub fn share(&self, row: BreakdownRow) -> f64 {
        self.shares[row.index()]
    }

    /// Per-row differences `other − self` (the paper reports
    /// `synthesized − real`).
    pub fn diff(&self, synthesized: &Breakdown) -> [f64; 8] {
        let mut d = [0.0; 8];
        for (i, di) in d.iter_mut().enumerate() {
            *di = synthesized.shares[i] - self.shares[i];
        }
        d
    }

    /// Largest absolute per-row difference vs `synthesized`.
    pub fn max_abs_diff(&self, synthesized: &Breakdown) -> f64 {
        self.diff(synthesized)
            .iter()
            .fold(0.0f64, |m, d| m.max(d.abs()))
    }
}

/// Compute the context-attributed breakdown for one device type.
pub fn breakdown(trace: &Trace, device: DeviceType) -> Breakdown {
    let mut counts = [0usize; 8];
    let per_ue = trace.per_ue();
    for (_, events) in per_ue.iter() {
        if events.first().map(|r| r.device) != Some(device) {
            continue;
        }
        let outcome = replay_ue(events);
        for (r, ctx) in events.iter().zip(&outcome.event_context) {
            let row = match (r.event, ctx) {
                (EventType::Attach, _) => BreakdownRow::Atch,
                (EventType::Detach, _) => BreakdownRow::Dtch,
                (EventType::ServiceRequest, _) => BreakdownRow::SrvReq,
                (EventType::S1ConnRelease, _) => BreakdownRow::S1ConnRel,
                (EventType::Handover, TopState::Connected) => BreakdownRow::HoConn,
                (EventType::Handover, _) => BreakdownRow::HoIdle,
                (EventType::Tau, TopState::Connected) => BreakdownRow::TauConn,
                (EventType::Tau, _) => BreakdownRow::TauIdle,
            };
            counts[row.index()] += 1;
        }
    }
    let total: usize = counts.iter().sum();
    let mut shares = [0.0; 8];
    if total > 0 {
        for i in 0..8 {
            shares[i] = counts[i] as f64 / total as f64;
        }
    }
    Breakdown { shares, total }
}

/// Simple six-way breakdown (Table 1, no context split).
pub fn breakdown_simple(trace: &Trace, device: DeviceType) -> [f64; 6] {
    let mut counts = [0usize; 6];
    for r in trace.iter() {
        if r.device == device {
            counts[r.event.code() as usize] += 1;
        }
    }
    let total: usize = counts.iter().sum();
    let mut shares = [0.0; 6];
    if total > 0 {
        for i in 0..6 {
            shares[i] = counts[i] as f64 / total as f64;
        }
    }
    shares
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_trace::{Timestamp, TraceRecord, UeId};

    fn rec(t: u64, ue: u32, e: EventType) -> TraceRecord {
        TraceRecord::new(Timestamp::from_millis(t), UeId(ue), DeviceType::Phone, e)
    }

    #[test]
    fn context_attribution() {
        use EventType::*;
        let trace = Trace::from_records(vec![
            rec(0, 0, Attach),
            rec(1_000, 0, Handover),      // CONNECTED
            rec(2_000, 0, Tau),           // CONNECTED
            rec(3_000, 0, S1ConnRelease), // → IDLE
            rec(4_000, 0, Tau),           // IDLE
            rec(5_000, 0, Handover),      // IDLE — violation
        ]);
        let b = breakdown(&trace, DeviceType::Phone);
        assert_eq!(b.total, 6);
        assert!((b.share(BreakdownRow::HoConn) - 1.0 / 6.0).abs() < 1e-12);
        assert!((b.share(BreakdownRow::HoIdle) - 1.0 / 6.0).abs() < 1e-12);
        assert!((b.share(BreakdownRow::TauConn) - 1.0 / 6.0).abs() < 1e-12);
        assert!((b.share(BreakdownRow::TauIdle) - 1.0 / 6.0).abs() < 1e-12);
        let sum: f64 = b.shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn other_device_ignored() {
        let trace = Trace::from_records(vec![rec(0, 0, EventType::Attach)]);
        let b = breakdown(&trace, DeviceType::Tablet);
        assert_eq!(b.total, 0);
        assert_eq!(b.shares, [0.0; 8]);
    }

    #[test]
    fn diff_is_signed() {
        let a = Breakdown {
            shares: [0.1, 0.0, 0.5, 0.4, 0.0, 0.0, 0.0, 0.0],
            total: 100,
        };
        let b = Breakdown {
            shares: [0.0, 0.0, 0.6, 0.4, 0.0, 0.0, 0.0, 0.0],
            total: 100,
        };
        let d = a.diff(&b);
        assert!((d[0] + 0.1).abs() < 1e-12);
        assert!((d[2] - 0.1).abs() < 1e-12);
        assert!((a.max_abs_diff(&b) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn simple_breakdown_matches_counts() {
        use EventType::*;
        let trace = Trace::from_records(vec![
            rec(0, 0, Attach),
            rec(1, 0, ServiceRequest),
            rec(2, 0, ServiceRequest),
            rec(3, 0, S1ConnRelease),
        ]);
        let s = breakdown_simple(&trace, DeviceType::Phone);
        assert!((s[EventType::ServiceRequest.code() as usize] - 0.5).abs() < 1e-12);
        assert!((s[EventType::Attach.code() as usize] - 0.25).abs() < 1e-12);
    }
}
