//! Automated reproduction verdicts.
//!
//! `EXPERIMENTS.md` argues that the paper's *shapes* reproduce; this
//! module turns each shape claim into an executable check so one command
//! (`repro verdicts`) answers "does the reproduction still hold?" after
//! any change to the world, the fit, or the generator. Each verdict is a
//! single inequality with the measured values shown.

use crate::breakdown::{breakdown, BreakdownRow};
use crate::lab::{Lab, Scenario};
use crate::microscopic::{events_per_ue, max_y_distance, state_sojourns};
use crate::report::Table;
use crate::testsuite::{poisson_ks_overall, run_suite};
use cn_fit::Method;
use cn_stats::variance_time::{bin_counts, poisson_reference, variance_time_plot};
use cn_trace::{DeviceType, EventType};
use cn_verify::VerdictReport;

fn check(claims: &mut VerdictReport, claim: &'static str, measured: String, pass: bool) {
    claims.check(claim, measured, pass);
}

/// Run every shape check, returning the shared claim/measured/pass report
/// (the same [`VerdictReport`] the `cn-verify` round-trip harness emits, so
/// tooling can treat paper-shape claims and model-recovery claims
/// uniformly).
pub fn verdict_report(lab: &Lab) -> VerdictReport {
    let mut claims = VerdictReport::new("Reproduction verdicts (shape claims of EXPERIMENTS.md)");

    // 1. Table 1 shape: SRV/REL dominate, REL ≥ SRV, cars lead HO.
    {
        let world = lab.world();
        let shares: Vec<[f64; 6]> = DeviceType::ALL
            .iter()
            .map(|&d| crate::breakdown::breakdown_simple(world, d))
            .collect();
        let srv = EventType::ServiceRequest.code() as usize;
        let rel = EventType::S1ConnRelease.code() as usize;
        let ho = EventType::Handover.code() as usize;
        let dominant = shares.iter().all(|s| s[srv] + s[rel] > 0.75);
        check(
            &mut claims,
            "T1: SRV_REQ+S1_CONN_REL dominate every device (>75%)",
            format!(
                "{:.0}%/{:.0}%/{:.0}%",
                (shares[0][srv] + shares[0][rel]) * 100.0,
                (shares[1][srv] + shares[1][rel]) * 100.0,
                (shares[2][srv] + shares[2][rel]) * 100.0
            ),
            dominant,
        );
        check(
            &mut claims,
            "T1: connected cars lead the HO share",
            format!(
                "CC {:.1}% vs P {:.1}% / T {:.1}%",
                shares[1][ho] * 100.0,
                shares[0][ho] * 100.0,
                shares[2][ho] * 100.0
            ),
            shares[1][ho] > shares[0][ho] && shares[1][ho] > shares[2][ho],
        );
    }

    // 2. Fig. 3 shape: real variance exceeds Poisson at large scales.
    {
        let world = lab.world().filter_device(DeviceType::Phone);
        let times: Vec<u64> = world
            .iter()
            .filter(|r| r.event == EventType::ServiceRequest)
            .map(|r| r.t.as_millis())
            .collect();
        let end = lab.world().end().map_or(0, |e| e.as_millis());
        let bins = bin_counts(&times, 0, end);
        let rate = times.len() as f64 / bins.len().max(1) as f64;
        let plot = variance_time_plot(&bins, &[100]);
        let (measured, pass) = match plot.first() {
            Some(p) => {
                let reference = poisson_reference(rate, 100);
                (
                    format!("{:.2e} vs Poisson {:.2e}", p.normalized_variance, reference),
                    p.normalized_variance > 3.0 * reference,
                )
            }
            None => ("no data".into(), false),
        };
        check(
            &mut claims,
            "F3: real variance ≫ Poisson at 100 s (phones, SRV_REQ)",
            measured,
            pass,
        );
    }

    // 3. Tables 8/9 headline: dominant columns reject Poisson.
    {
        let suite = run_suite(lab.world(), false, &lab.cfg.clustering);
        let rate = poisson_ks_overall(&suite);
        // The paper reports <3% at carrier scale; per-combination pools
        // shrink with the lab population, so the executable bound is 20%.
        // The measured value at quick scale sits near the bound and depends
        // on the exact RNG stream (≈13% with upstream rand, ≈16% with the
        // vendored xoshiro shim); default scale measures ≈0–5% either way.
        check(
            &mut claims,
            "T8: Poisson K–S pass rate on dominant columns near zero (<20%)",
            format!("{:.1}%", rate * 100.0),
            rate < 0.20,
        );
    }

    // 4. Table 4 core: two-level methods never misplace HO; baselines do;
    //    Ours total error beats Base for every device.
    {
        let real: Vec<_> = DeviceType::ALL
            .iter()
            .map(|&d| breakdown(lab.real(Scenario::Two), d))
            .collect();
        let ours: Vec<_> = DeviceType::ALL
            .iter()
            .map(|&d| breakdown(lab.synth(Method::Ours, Scenario::Two), d))
            .collect();
        let base: Vec<_> = DeviceType::ALL
            .iter()
            .map(|&d| breakdown(lab.synth(Method::Base, Scenario::Two), d))
            .collect();
        let ours_leak: f64 = ours.iter().map(|b| b.share(BreakdownRow::HoIdle)).sum();
        let base_leak: f64 = base.iter().map(|b| b.share(BreakdownRow::HoIdle)).sum();
        check(
            &mut claims,
            "T4: Ours emits zero HO(IDLE); Base leaks it",
            format!(
                "Ours {:.2}%, Base {:.1}%",
                ours_leak * 100.0,
                base_leak * 100.0
            ),
            ours_leak == 0.0 && base_leak > 0.0,
        );
        let all_better = DeviceType::ALL
            .iter()
            .enumerate()
            .all(|(i, _)| real[i].max_abs_diff(&ours[i]) < real[i].max_abs_diff(&base[i]));
        check(
            &mut claims,
            "T4: Ours max breakdown error < Base for every device",
            format!(
                "Ours {:.1}/{:.1}/{:.1}% vs Base {:.1}/{:.1}/{:.1}%",
                real[0].max_abs_diff(&ours[0]) * 100.0,
                real[1].max_abs_diff(&ours[1]) * 100.0,
                real[2].max_abs_diff(&ours[2]) * 100.0,
                real[0].max_abs_diff(&base[0]) * 100.0,
                real[1].max_abs_diff(&base[1]) * 100.0,
                real[2].max_abs_diff(&base[2]) * 100.0
            ),
            all_better,
        );
    }

    // 5. Table 5 core: Ours beats B2 on CONNECTED sojourn CDFs (phones).
    {
        let real = lab.real(Scenario::Two);
        let (conn_real, _) = state_sojourns(real, DeviceType::Phone);
        let (conn_ours, _) =
            state_sojourns(lab.synth(Method::Ours, Scenario::Two), DeviceType::Phone);
        let (conn_b2, _) = state_sojourns(lab.synth(Method::B2, Scenario::Two), DeviceType::Phone);
        let d_ours = max_y_distance(&conn_real, &conn_ours).unwrap_or(1.0);
        let d_b2 = max_y_distance(&conn_real, &conn_b2).unwrap_or(1.0);
        check(
            &mut claims,
            "T5: Ours CONNECTED-sojourn distance ≪ B2 (phones, ≥3x)",
            format!("Ours {:.1}% vs B2 {:.1}%", d_ours * 100.0, d_b2 * 100.0),
            d_b2 > 3.0 * d_ours,
        );
    }

    // 6. Fig. 7 core: Ours per-UE count CDF tracks real better than Base.
    {
        let mix = lab.cfg.scenario_mix(Scenario::Two);
        let real = events_per_ue(
            lab.real(Scenario::Two),
            &mix,
            DeviceType::Phone,
            EventType::ServiceRequest,
        );
        let ours = events_per_ue(
            lab.synth(Method::Ours, Scenario::Two),
            &mix,
            DeviceType::Phone,
            EventType::ServiceRequest,
        );
        let base = events_per_ue(
            lab.synth(Method::Base, Scenario::Two),
            &mix,
            DeviceType::Phone,
            EventType::ServiceRequest,
        );
        let d_ours = max_y_distance(&real, &ours).unwrap_or(1.0);
        let d_base = max_y_distance(&real, &base).unwrap_or(1.0);
        check(
            &mut claims,
            "F7: Ours per-UE SRV_REQ count CDF beats Base (phones)",
            format!("Ours {:.1}% vs Base {:.1}%", d_ours * 100.0, d_base * 100.0),
            d_ours < d_base,
        );
    }

    // 7. Table 7 core: NSA boosts the HO share well above LTE's.
    {
        let base = lab.models(Method::Ours);
        let nsa = cn_fivegee::adapt_model(base, &cn_fivegee::ScalingProfile::NSA);
        let lte_day = lab.synth_days(base, 1.0, lab.cfg.seed ^ 0x77a);
        let nsa_day = lab.synth_days(&nsa, 1.0, lab.cfg.seed ^ 0x77b);
        let share = |t: &cn_trace::Trace| {
            let s = crate::breakdown::breakdown_simple(t, DeviceType::Phone);
            s[EventType::Handover.code() as usize]
        };
        let lte_ho = share(&lte_day);
        let nsa_ho = share(&nsa_day);
        check(
            &mut claims,
            "T7: 5G NSA HO share ≫ LTE (phones, ≥2x)",
            format!("LTE {:.1}% → NSA {:.1}%", lte_ho * 100.0, nsa_ho * 100.0),
            nsa_ho > 2.0 * lte_ho,
        );
    }

    claims
}

/// [`verdict_report`] rendered as the `repro verdicts` table. The final row
/// is the overall verdict; `all_pass` is also returned for programmatic use.
pub fn verdicts(lab: &Lab) -> (Table, bool) {
    let report = verdict_report(lab);
    let all_pass = report.all_pass();
    let mut t = Table::new(&report.title, &["claim", "measured", "verdict"]);
    for v in report.verdicts {
        t.push_row(vec![
            v.claim,
            v.measured,
            if v.pass { "PASS".into() } else { "FAIL".into() },
        ]);
    }
    t.push_row(vec![
        "OVERALL".into(),
        String::new(),
        if all_pass {
            "PASS".into()
        } else {
            "FAIL".into()
        },
    ]);
    (t, all_pass)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::ExperimentConfig;

    #[test]
    fn all_verdicts_pass_at_quick_scale() {
        let lab = Lab::new(ExperimentConfig::quick());
        let (table, all_pass) = verdicts(&lab);
        assert!(all_pass, "\n{table}");
        // One row per claim plus the overall row.
        assert!(table.rows.len() >= 8);
    }
}
