//! Microscopic per-UE fidelity metrics (§8.1.2).
//!
//! Two per-UE quantities are compared between real and synthesized traces
//! via the maximum y-distance of their CDFs (the two-sample K–S statistic):
//!
//! * the number of events of a given type per UE (zero-count UEs of the
//!   population are included — both traces describe a known population);
//! * the sojourn time in CONNECTED/IDLE before the dominant
//!   CONNECTED↔IDLE transitions.

use cn_statemachine::{replay_ue, TopTransition};
use cn_stats::two_sample_distance;
use cn_trace::{DeviceType, EventType, PopulationMix, Trace, MS_PER_SEC};

/// The contiguous UE-index range of one device type under the standard
/// population layout (phones, then connected cars, then tablets).
pub fn device_range(mix: &PopulationMix, device: DeviceType) -> std::ops::Range<u32> {
    let p = mix.phones;
    let c = mix.connected_cars;
    match device {
        DeviceType::Phone => 0..p,
        DeviceType::ConnectedCar => p..p + c,
        DeviceType::Tablet => p + c..p + c + mix.tablets,
    }
}

/// Events of `event` per UE, over the full device population (UEs with no
/// events contribute zero).
pub fn events_per_ue(
    trace: &Trace,
    mix: &PopulationMix,
    device: DeviceType,
    event: EventType,
) -> Vec<f64> {
    let range = device_range(mix, device);
    let mut counts = vec![0f64; range.len()];
    for r in trace.iter() {
        if r.event == event && range.contains(&r.ue.get()) {
            counts[(r.ue.get() - range.start) as usize] += 1.0;
        }
    }
    counts
}

/// Sojourn samples (seconds) in CONNECTED (before the CONNECTED→IDLE
/// transition) and IDLE (before IDLE→CONNECTED), pooled over the device's
/// UEs.
pub fn state_sojourns(trace: &Trace, device: DeviceType) -> (Vec<f64>, Vec<f64>) {
    let mut connected = Vec::new();
    let mut idle = Vec::new();
    for (_, events) in trace.per_ue().iter() {
        if events.first().map(|r| r.device) != Some(device) {
            continue;
        }
        let outcome = replay_ue(events);
        for s in &outcome.top_sojourns {
            match s.transition {
                TopTransition::ConnToIdle => {
                    connected.push(s.duration_ms as f64 / MS_PER_SEC as f64)
                }
                TopTransition::IdleToConn => idle.push(s.duration_ms as f64 / MS_PER_SEC as f64),
                _ => {}
            }
        }
    }
    (connected, idle)
}

/// Maximum y-distance between the CDFs of two sample sets; `None` when a
/// side is empty.
pub fn max_y_distance(real: &[f64], synthesized: &[f64]) -> Option<f64> {
    two_sample_distance(real, synthesized)
}

/// Split per-UE counts into the paper's inactive (≤ `threshold` events) and
/// active (> `threshold`) groups (Table 6 uses `threshold = 2`).
pub fn split_active(counts: &[f64], threshold: f64) -> (Vec<f64>, Vec<f64>) {
    let mut inactive = Vec::new();
    let mut active = Vec::new();
    for &c in counts {
        if c <= threshold {
            inactive.push(c);
        } else {
            active.push(c);
        }
    }
    (inactive, active)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_trace::{Timestamp, TraceRecord, UeId};

    #[test]
    fn device_ranges_partition_population() {
        let mix = PopulationMix::new(10, 5, 3);
        assert_eq!(device_range(&mix, DeviceType::Phone), 0..10);
        assert_eq!(device_range(&mix, DeviceType::ConnectedCar), 10..15);
        assert_eq!(device_range(&mix, DeviceType::Tablet), 15..18);
    }

    #[test]
    fn counts_include_silent_ues() {
        let mix = PopulationMix::new(3, 0, 0);
        let trace = Trace::from_records(vec![TraceRecord::new(
            Timestamp::from_millis(5),
            UeId(1),
            DeviceType::Phone,
            EventType::ServiceRequest,
        )]);
        let counts = events_per_ue(&trace, &mix, DeviceType::Phone, EventType::ServiceRequest);
        assert_eq!(counts, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn sojourns_extracted() {
        use EventType::*;
        let mk =
            |t: u64, e| TraceRecord::new(Timestamp::from_millis(t), UeId(0), DeviceType::Phone, e);
        let trace = Trace::from_records(vec![
            mk(0, Attach),
            mk(4_000, S1ConnRelease),
            mk(10_000, ServiceRequest),
        ]);
        let (conn, idle) = state_sojourns(&trace, DeviceType::Phone);
        assert_eq!(conn, vec![4.0]);
        assert_eq!(idle, vec![6.0]);
        let (c2, _) = state_sojourns(&trace, DeviceType::Tablet);
        assert!(c2.is_empty());
    }

    #[test]
    fn active_split() {
        let counts = [0.0, 1.0, 2.0, 3.0, 10.0];
        let (inactive, active) = split_active(&counts, 2.0);
        assert_eq!(inactive, vec![0.0, 1.0, 2.0]);
        assert_eq!(active, vec![3.0, 10.0]);
    }

    #[test]
    fn identical_distance_zero() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(max_y_distance(&a, &a), Some(0.0));
        assert_eq!(max_y_distance(&a, &[]), None);
    }
}
