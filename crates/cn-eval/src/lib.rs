//! Evaluation and experiment harness.
//!
//! Reproduces every table and figure of the paper's evaluation (§4, §8,
//! Appendices A–C) against the `cn-world` ground truth:
//!
//! | Paper artifact | Module/function |
//! |---|---|
//! | Table 1 (event breakdown) | [`experiments::table1`] |
//! | Fig. 2 (per-device-hour box plots) | [`experiments::fig2`] |
//! | Fig. 3 (variance–time plots) | [`experiments::fig3`] |
//! | Fig. 4 (real vs fitted-Poisson CDFs) | [`experiments::fig4`] |
//! | Table 2 (4G↔5G mapping) | [`experiments::table2`] |
//! | Table 3 (method matrix) | [`experiments::table3`] |
//! | Table 4 / Table 11 (breakdown differences, Scenario 2 / 1) | [`experiments::table4`] |
//! | Table 5 (max y-distance, per-UE counts & sojourns) | [`experiments::table5`] |
//! | Table 6 (inactive/active split) | [`experiments::table6`] |
//! | Table 7 (projected 5G breakdowns) | [`experiments::table7`] |
//! | Tables 8/9 (distribution-test pass rates, no/with clustering) | [`experiments::table8or9`] |
//! | Table 10 (second-level transition pass rates) | [`experiments::table10`] |
//! | Fig. 7 (per-UE count CDFs) | [`experiments::fig7`] |
//!
//! The [`lab::Lab`] memoizes the expensive artifacts (world traces, fitted
//! models, synthesized traces) so the full battery shares work. Beyond the
//! paper's own artifacts, [`ablation`] quantifies the design choices the
//! implementation surfaced (clustering threshold, competing-risks
//! censoring, persona consistency).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod breakdown;
pub mod experiments;
pub mod generalize;
pub mod lab;
pub mod microscopic;
pub mod report;
pub mod testsuite;
pub mod timeseries;
pub mod verdicts;

pub use breakdown::{breakdown, Breakdown, BreakdownRow};
pub use lab::{ExperimentConfig, Lab};
pub use report::Table;
pub use verdicts::{verdict_report, verdicts};
