//! Volume time-series fidelity between two traces.
//!
//! The paper's macroscopic metric compares event *shares*; this module
//! compares event *rates over time* — does the synthesized trace rise and
//! fall with the real one at a given resolution? Used by the diurnal
//! extension and available for finer (e.g. 5-minute) comparisons.

use cn_trace::series::count_series;
use cn_trace::{Timestamp, Trace};
use serde::{Deserialize, Serialize};

/// Comparison of two aligned count series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesFidelity {
    /// Pearson correlation of the two series (0 when either is constant).
    pub correlation: f64,
    /// Root-mean-square error between per-window counts.
    pub rmse: f64,
    /// RMSE normalized by the reference mean (∞-safe: 0 when the
    /// reference is empty).
    pub nrmse: f64,
    /// Number of windows compared.
    pub windows: usize,
}

/// Pearson correlation of two equal-length slices.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "series length mismatch");
    let n = a.len() as f64;
    if a.is_empty() {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let va: f64 = a.iter().map(|x| (x - ma).powi(2)).sum();
    let vb: f64 = b.iter().map(|y| (y - mb).powi(2)).sum();
    if va > 0.0 && vb > 0.0 {
        cov / (va.sqrt() * vb.sqrt())
    } else {
        0.0
    }
}

/// Compare the event volumes of `reference` and `candidate` over
/// `[start, end)` in windows of `window_ms`.
///
/// Returns `None` for degenerate ranges/windows.
pub fn series_fidelity(
    reference: &Trace,
    candidate: &Trace,
    start: Timestamp,
    end: Timestamp,
    window_ms: u64,
) -> Option<SeriesFidelity> {
    let a = count_series(reference, start, end, window_ms);
    let b = count_series(candidate, start, end, window_ms);
    if a.is_empty() || a.len() != b.len() {
        return None;
    }
    let af: Vec<f64> = a.iter().map(|&c| f64::from(c)).collect();
    let bf: Vec<f64> = b.iter().map(|&c| f64::from(c)).collect();
    let n = af.len() as f64;
    let mse: f64 = af
        .iter()
        .zip(&bf)
        .map(|(x, y)| (x - y).powi(2))
        .sum::<f64>()
        / n;
    let rmse = mse.sqrt();
    let ref_mean = af.iter().sum::<f64>() / n;
    Some(SeriesFidelity {
        correlation: pearson(&af, &bf),
        rmse,
        nrmse: if ref_mean > 0.0 { rmse / ref_mean } else { 0.0 },
        windows: af.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_trace::{DeviceType, EventType, TraceRecord, UeId};

    fn burst(at_ms: u64, n: u64, ue: u32) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| {
                TraceRecord::new(
                    Timestamp::from_millis(at_ms + i),
                    UeId(ue),
                    DeviceType::Phone,
                    EventType::Tau,
                )
            })
            .collect()
    }

    #[test]
    fn identical_traces_are_perfect() {
        let mut recs = burst(0, 10, 0);
        recs.extend(burst(60_000, 30, 1));
        let t = Trace::from_records(recs);
        let f = series_fidelity(
            &t,
            &t,
            Timestamp::from_millis(0),
            Timestamp::from_millis(120_000),
            10_000,
        )
        .unwrap();
        assert!((f.correlation - 1.0).abs() < 1e-12);
        assert_eq!(f.rmse, 0.0);
        assert_eq!(f.windows, 12);
    }

    #[test]
    fn anti_phased_traces_anticorrelate() {
        let a = Trace::from_records(burst(0, 50, 0));
        let b = Trace::from_records(burst(30_000, 50, 0));
        let f = series_fidelity(
            &a,
            &b,
            Timestamp::from_millis(0),
            Timestamp::from_millis(60_000),
            10_000,
        )
        .unwrap();
        assert!(f.correlation < 0.0, "corr {}", f.correlation);
        assert!(f.rmse > 0.0);
    }

    #[test]
    fn degenerate_ranges_are_none() {
        let t = Trace::from_records(burst(0, 5, 0));
        assert!(series_fidelity(
            &t,
            &t,
            Timestamp::from_millis(10),
            Timestamp::from_millis(10),
            1_000
        )
        .is_none());
    }

    #[test]
    fn pearson_edge_cases() {
        assert_eq!(pearson(&[], &[]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0); // constant side
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
    }
}
