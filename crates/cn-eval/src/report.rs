//! Plain-text/markdown table rendering for experiment output.

use serde::{Deserialize, Serialize};

/// A renderable results table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Table caption, e.g. `"Table 4: ..."`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row length differs from the header length.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row/header length mismatch");
        self.rows.push(row);
    }

    /// Render as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{c:>w$}", w = w));
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.headers, &widths));
        let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        out
    }

    /// Render as CSV (title as a comment line, then header + rows).
    pub fn render_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = format!("# {}\n", self.title);
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Render as a GitHub-flavored markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Format a fraction as a signed percentage with one decimal, paper-style
/// (`+1.4%`, `-45.3%`).
pub fn signed_pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

/// Format a fraction as an unsigned percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.push_row(vec!["alpha".into(), "1".into()]);
        t.push_row(vec!["b".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("Demo"));
        assert!(s.contains("alpha"));
        let md = t.render_markdown();
        assert!(md.contains("| name | value |"));
    }

    #[test]
    fn renders_csv_with_escaping() {
        let mut t = Table::new("T", &["a", "b"]);
        t.push_row(vec!["x,y".into(), "quo\"te".into()]);
        let csv = t.render_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"quo\"\"te\""));
        assert!(csv.starts_with("# T\n"));
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn row_length_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(signed_pct(0.014), "+1.4%");
        assert_eq!(signed_pct(-0.453), "-45.3%");
        assert_eq!(pct(0.455), "45.5%");
    }
}
