//! Generalizability study (the paper's §9).
//!
//! The paper argues its *methodology* — two-level machine + Semi-Markov +
//! adaptive clustering — transfers to populations with different traffic
//! characteristics (other regions, massive IoT, self-driving cars), even
//! though the fitted *parameters* do not. We test that claim directly:
//! build worlds from behavioral profiles the models were never calibrated
//! against, fit Ours and Base on each, and check that the method ordering
//! survives.

use crate::breakdown::{breakdown, BreakdownRow};
use crate::report::{pct, Table};
use cn_fit::{fit, FitConfig, Method};
use cn_gen::{generate, GenConfig};
use cn_trace::{DeviceType, PopulationMix, Timestamp, Trace};
use cn_world::{generate_world, DeviceProfile, WorldConfig};

/// A named alternative population.
pub struct AltWorld {
    /// Display name.
    pub name: &'static str,
    /// World configuration.
    pub config: WorldConfig,
}

/// The §9 candidate populations: massive IoT and self-driving cars, at a
/// size suitable for a minutes-scale study.
pub fn alt_worlds(seed: u64, scale: u32) -> Vec<AltWorld> {
    let mix = PopulationMix::new(0, 4 * scale, 0);
    let mut iot = WorldConfig::new(mix, 3.0, seed ^ 0x107);
    iot.profiles[DeviceType::ConnectedCar.code() as usize] =
        DeviceProfile::iot_sensor(DeviceType::ConnectedCar);
    let mut sdc = WorldConfig::new(mix, 3.0, seed ^ 0x5dc);
    sdc.profiles[DeviceType::ConnectedCar.code() as usize] =
        DeviceProfile::self_driving_car(DeviceType::ConnectedCar);
    vec![
        AltWorld {
            name: "massive IoT sensors",
            config: iot,
        },
        AltWorld {
            name: "self-driving cars",
            config: sdc,
        },
    ]
}

/// Fit Ours and Base on an alternative world and compare busy-hour
/// breakdown error (max absolute difference across the 8 rows) plus the
/// HO(IDLE) leak.
fn study(world: &Trace, mix: PopulationMix, busy_hour: u8, seed: u64) -> [(f64, f64); 2] {
    let real = world.window(
        Timestamp::at_hour(1, busy_hour),
        Timestamp::at_hour(1, busy_hour + 1),
    );
    let mut out = [(0.0, 0.0); 2];
    for (i, method) in [Method::Ours, Method::Base].into_iter().enumerate() {
        let models = fit(world, &FitConfig::new(method));
        let config = GenConfig::new(mix, Timestamp::at_hour(1, busy_hour), 1.0, seed);
        let synth = generate(&models, &config);
        let r = breakdown(&real, DeviceType::ConnectedCar);
        let s = breakdown(&synth, DeviceType::ConnectedCar);
        out[i] = (r.max_abs_diff(&s), s.share(BreakdownRow::HoIdle));
    }
    out
}

/// The generalizability table: per alternative population, Ours vs Base
/// busy-hour fidelity.
pub fn generalizability(seed: u64, scale: u32) -> Table {
    let mut t = Table::new(
        "Extension (§9): methodology transfer to new device classes",
        &[
            "population",
            "Ours max diff",
            "Base max diff",
            "Ours HO(IDLE)",
            "Base HO(IDLE)",
        ],
    );
    for alt in alt_worlds(seed, scale) {
        let world = generate_world(&alt.config);
        let busy = 14;
        let results = study(&world, alt.config.mix, busy, seed ^ 0x9e);
        t.push_row(vec![
            alt.name.to_string(),
            pct(results[0].0),
            pct(results[1].0),
            pct(results[0].1),
            pct(results[1].1),
        ]);
    }
    t
}

/// Extension: UE-level holdout evaluation. The paper fits on one UE sample
/// and validates against freshly sampled UEs of the same carrier; here we
/// make the equivalent check *within* one world — fit on a random half of
/// the UEs, evaluate busy-hour fidelity against the held-out half — so no
/// generation seed or world regeneration can leak into the comparison.
pub fn holdout(world: &Trace, busy_hour: u8, seed: u64) -> Table {
    let mut t = Table::new(
        "Extension: UE-level holdout (fit on half the UEs, compare vs the rest)",
        &["device", "max |breakdown diff|", "HO(IDLE) synth"],
    );
    let (train, test) = world.partition_ues(0.5, seed);
    let models = fit(&train, &FitConfig::new(Method::Ours));
    // Population matching the held-out half's device composition.
    let mut counts = [0u32; 3];
    for ue in test.ues() {
        if let Some(d) = test.device_of(ue) {
            counts[d.code() as usize] += 1;
        }
    }
    let mix = PopulationMix::new(counts[0], counts[1], counts[2]);
    let config = GenConfig::new(mix, Timestamp::at_hour(1, busy_hour), 1.0, seed ^ 0x401d);
    let synth = generate(&models, &config);
    let real = test.window(
        Timestamp::at_hour(1, busy_hour),
        Timestamp::at_hour(1, busy_hour + 1),
    );
    for device in DeviceType::ALL {
        let r = breakdown(&real, device);
        let s = breakdown(&synth, device);
        t.push_row(vec![
            device.abbrev().into(),
            pct(r.max_abs_diff(&s)),
            pct(s.share(BreakdownRow::HoIdle)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn methodology_transfers_to_new_device_classes() {
        let t = generalizability(77, 12);
        assert_eq!(t.rows.len(), 2);
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        for row in &t.rows {
            let ours = parse(&row[1]);
            let base = parse(&row[2]);
            let ours_leak = parse(&row[3]);
            // Ours never leaks HO into IDLE, whatever the population.
            assert_eq!(ours_leak, 0.0, "{}: leak {ours_leak}", row[0]);
            // And its total error does not exceed the baseline's by much —
            // for mobility-heavy populations it should win outright.
            assert!(
                ours <= base + 3.0,
                "{}: Ours {ours}% vs Base {base}%",
                row[0]
            );
        }
    }

    #[test]
    fn holdout_generalizes() {
        let world = generate_world(&WorldConfig::new(PopulationMix::new(80, 30, 20), 2.0, 404));
        let t = holdout(&world, 18, 5);
        assert_eq!(t.rows.len(), 3);
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        for row in &t.rows {
            // Held-out fidelity stays bounded and HO never lands in IDLE.
            assert!(parse(&row[1]) < 30.0, "{}: diff {}", row[0], row[1]);
            assert_eq!(parse(&row[2]), 0.0, "{}: HO(IDLE)", row[0]);
        }
    }

    #[test]
    fn alt_worlds_have_distinct_traffic() {
        let worlds: Vec<Trace> = alt_worlds(5, 10)
            .into_iter()
            .map(|a| generate_world(&a.config))
            .collect();
        // The IoT world is far sparser than the self-driving one.
        assert!(
            worlds[1].len() > 3 * worlds[0].len(),
            "sdc {} vs iot {}",
            worlds[1].len(),
            worlds[0].len()
        );
    }
}
