//! Ablation studies of the model's design choices.
//!
//! Three knobs that `DESIGN.md` §4a calls out as load-bearing are varied
//! here, each evaluated on busy-hour fidelity against the Scenario-1 real
//! trace:
//!
//! * **Clustering size threshold θ_n** (§5.3): from "one cluster per UE
//!   cohort" down to effectively-unclustered. Too-large θ_n collapses the
//!   diversity the paper's adaptive scheme exists to capture; too-small
//!   starves each cluster of samples.
//! * **Competing-risks exit probabilities**: removing the censoring
//!   correction reverts to arming an HO/TAU timer on every bottom-state
//!   visit — the generator then floods the trace with Category-2 events.
//! * **Persona consistency**: replacing the per-UE cluster *trajectory*
//!   with independently resampled per-hour clusters keeps every marginal
//!   hour distribution intact but breaks cross-hour identity.

use crate::breakdown::breakdown;
use crate::lab::{Lab, Scenario};
use crate::microscopic::{events_per_ue, max_y_distance, state_sojourns};
use crate::report::{pct, Table};
use cn_fit::{fit, FitConfig, Method, ModelSet};
use cn_gen::{generate, GenConfig};
use cn_trace::{DeviceType, EventType, Timestamp};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Fidelity summary of one model variant against the Scenario-1 real
/// trace: worst absolute breakdown difference, per-UE SRV_REQ count CDF
/// distance, and CONNECTED sojourn CDF distance (phones).
struct Fidelity {
    max_breakdown_diff: f64,
    srv_count_distance: f64,
    conn_sojourn_distance: f64,
}

fn evaluate(lab: &Lab, models: &ModelSet, seed: u64) -> Fidelity {
    let mix = lab.cfg.scenario_mix(Scenario::One);
    let config = GenConfig::new(mix, Timestamp::at_hour(0, lab.cfg.busy_hour), 1.0, seed);
    let synth = generate(models, &config);
    let real = lab.real(Scenario::One);

    let mut max_diff = 0.0f64;
    for device in DeviceType::ALL {
        let r = breakdown(real, device);
        let s = breakdown(&synth, device);
        max_diff = max_diff.max(r.max_abs_diff(&s));
    }
    let srv_real = events_per_ue(real, &mix, DeviceType::Phone, EventType::ServiceRequest);
    let srv_synth = events_per_ue(&synth, &mix, DeviceType::Phone, EventType::ServiceRequest);
    let (conn_real, _) = state_sojourns(real, DeviceType::Phone);
    let (conn_synth, _) = state_sojourns(&synth, DeviceType::Phone);
    Fidelity {
        max_breakdown_diff: max_diff,
        srv_count_distance: max_y_distance(&srv_real, &srv_synth).unwrap_or(1.0),
        conn_sojourn_distance: max_y_distance(&conn_real, &conn_synth).unwrap_or(1.0),
    }
}

fn fidelity_row(label: String, f: &Fidelity) -> Vec<String> {
    vec![
        label,
        pct(f.max_breakdown_diff),
        pct(f.srv_count_distance),
        pct(f.conn_sojourn_distance),
    ]
}

const FIDELITY_HEADERS: [&str; 4] = [
    "variant",
    "max |breakdown diff|",
    "SRV_REQ count dist (P)",
    "CONN sojourn dist (P)",
];

/// Ablation A: sweep the clustering size threshold θ_n.
pub fn ablation_clustering(lab: &Lab) -> Table {
    let mut t = Table::new(
        "Ablation A: clustering size threshold θ_n (method Ours)",
        &FIDELITY_HEADERS,
    );
    let base_theta = lab.cfg.clustering.theta_n;
    let total = lab.cfg.model_mix.total() as usize;
    for theta_n in [2, base_theta.max(3), total.max(4) * 2] {
        let mut config = FitConfig::new(Method::Ours);
        config.clustering = lab.cfg.clustering;
        config.clustering.theta_n = theta_n;
        config.n_days = lab.cfg.days.ceil() as u64;
        let models = fit(lab.world(), &config);
        let f = evaluate(lab, &models, 0xAB1);
        let label = if theta_n >= total {
            format!("θ_n = {theta_n} (single cluster)")
        } else {
            format!("θ_n = {theta_n}")
        };
        let mut row = fidelity_row(label, &f);
        row[0] = format!("{} [{} models]", row[0], models.model_count());
        t.push_row(row);
    }
    t
}

/// Ablation B: remove the competing-risks exit probabilities.
pub fn ablation_exit_prob(lab: &Lab) -> Table {
    let mut t = Table::new(
        "Ablation B: competing-risks censoring correction (method Ours)",
        &FIDELITY_HEADERS,
    );
    let with = lab.models(Method::Ours);
    t.push_row(fidelity_row(
        "with exit probabilities".into(),
        &evaluate(lab, with, 0xAB2),
    ));

    let mut without = with.clone();
    for dm in &mut without.devices {
        for hm in &mut dm.hours {
            for c in &mut hm.clusters {
                // No exit information ⇒ the generator arms on every visit.
                c.bottom_exit.clear();
            }
        }
    }
    t.push_row(fidelity_row(
        "without (arm every visit)".into(),
        &evaluate(lab, &without, 0xAB2),
    ));
    t
}

/// Ablation C: break persona (cross-hour cluster) consistency.
pub fn ablation_personas(lab: &Lab) -> Table {
    let mut t = Table::new(
        "Ablation C: persona consistency across hours (method Ours)",
        &FIDELITY_HEADERS,
    );
    let consistent = lab.models(Method::Ours);
    t.push_row(fidelity_row(
        "consistent trajectories".into(),
        &evaluate(lab, consistent, 0xAB3),
    ));

    // Shuffle each hour's persona column independently: identical marginal
    // cluster shares, destroyed cross-hour identity.
    let mut shuffled = consistent.clone();
    let mut rng = StdRng::seed_from_u64(lab.cfg.seed ^ 0xAB3);
    for dm in &mut shuffled.devices {
        let n = dm.personas.len();
        for h in 0..24 {
            let mut column: Vec<cn_cluster::ClusterId> =
                (0..n).map(|i| dm.personas[i][h]).collect();
            column.shuffle(&mut rng);
            for (i, c) in column.into_iter().enumerate() {
                dm.personas[i][h] = c;
            }
        }
    }
    t.push_row(fidelity_row(
        "per-hour shuffled".into(),
        &evaluate(lab, &shuffled, 0xAB3),
    ));
    t
}

/// Ablation D: hour-boundary sojourn semantics (`DESIGN.md` §4a #4).
///
/// Entry-hour sampling (our default) keeps long sojourns intact;
/// boundary-truncation resamples every hour. Both are compared on a
/// full-day synthesis: hourly-volume correlation against the modeled
/// world's weekday profile, plus total events (truncation tends to
/// fragment overnight idles into extra activity).
pub fn ablation_hour_semantics(lab: &Lab) -> Table {
    use cn_gen::HourSemantics;
    let mut t = Table::new(
        "Ablation D: hour-boundary sojourn semantics (method Ours)",
        &[
            "variant",
            "diurnal corr (P)",
            "diurnal corr (CC)",
            "events/day",
        ],
    );
    // Real weekday profile per device.
    let world = lab.world();
    let n_days = lab.cfg.days.max(1.0);
    let mut real = [[0f64; 24]; 3];
    for r in world.iter() {
        real[r.device.code() as usize][r.t.hour_of_day().index()] += 1.0 / n_days;
    }
    let pearson = |a: &[f64; 24], b: &[f64; 24]| {
        let ma = a.iter().sum::<f64>() / 24.0;
        let mb = b.iter().sum::<f64>() / 24.0;
        let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let va: f64 = a.iter().map(|x| (x - ma).powi(2)).sum();
        let vb: f64 = b.iter().map(|y| (y - mb).powi(2)).sum();
        if va > 0.0 && vb > 0.0 {
            cov / (va.sqrt() * vb.sqrt())
        } else {
            0.0
        }
    };
    for (name, semantics) in [
        ("entry-hour (default)", HourSemantics::EntryHour),
        ("truncate at boundary", HourSemantics::TruncateAtBoundary),
    ] {
        let mut config = GenConfig::new(
            lab.cfg.model_mix,
            Timestamp::at_hour(0, 0),
            24.0,
            lab.cfg.seed ^ 0xAB4,
        );
        config.semantics = semantics;
        let synth = generate(lab.models(Method::Ours), &config);
        let mut profile = [[0f64; 24]; 3];
        for r in synth.iter() {
            profile[r.device.code() as usize][r.t.hour_of_day().index()] += 1.0;
        }
        t.push_row(vec![
            name.into(),
            format!("{:.3}", pearson(&real[0], &profile[0])),
            format!("{:.3}", pearson(&real[1], &profile[1])),
            synth.len().to_string(),
        ]);
    }
    t
}

/// All four ablations.
pub fn all(lab: &Lab) -> Vec<Table> {
    vec![
        ablation_clustering(lab),
        ablation_exit_prob(lab),
        ablation_personas(lab),
        ablation_hour_semantics(lab),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::ExperimentConfig;

    #[test]
    fn exit_prob_ablation_shows_the_flood() {
        let lab = Lab::new(ExperimentConfig::quick());
        let t = ablation_exit_prob(&lab);
        assert_eq!(t.rows.len(), 2);
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        let with = parse(&t.rows[0][1]);
        let without = parse(&t.rows[1][1]);
        assert!(
            without > with,
            "removing censoring should hurt the breakdown: {with} vs {without}"
        );
    }

    #[test]
    fn clustering_ablation_produces_three_variants() {
        let lab = Lab::new(ExperimentConfig::quick());
        let t = ablation_clustering(&lab);
        assert_eq!(t.rows.len(), 3);
        // More clusters with smaller θ_n (model counts are embedded in the
        // labels; just ensure the table rendered sane percentages).
        for row in &t.rows {
            for cell in &row[1..] {
                let v: f64 = cell.trim_end_matches('%').parse().unwrap();
                assert!((0.0..=100.0).contains(&v));
            }
        }
    }

    #[test]
    fn hour_semantics_ablation_runs() {
        let lab = Lab::new(ExperimentConfig::quick());
        let t = ablation_hour_semantics(&lab);
        assert_eq!(t.rows.len(), 2);
        // Both variants still track the diurnal profile for phones.
        for row in &t.rows {
            let corr: f64 = row[1].parse().unwrap();
            assert!(corr > 0.5, "{}: corr {corr}", row[0]);
        }
    }

    #[test]
    fn persona_ablation_runs() {
        let lab = Lab::new(ExperimentConfig::quick());
        let t = ablation_personas(&lab);
        assert_eq!(t.rows.len(), 2);
    }
}
