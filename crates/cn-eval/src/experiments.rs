//! One function per paper table/figure.
//!
//! Every function takes a [`Lab`] (which memoizes the expensive artifacts)
//! and returns a renderable [`Table`] whose rows mirror the paper's
//! artifact. Absolute values differ from the paper — the substrate is the
//! `cn-world` simulator, not a US carrier — but the *shapes* (who wins,
//! orderings, rough factors) are the reproduction targets; see
//! `EXPERIMENTS.md`.

use crate::breakdown::{breakdown, breakdown_simple, BreakdownRow};
use crate::lab::{Lab, Scenario};
use crate::microscopic::{events_per_ue, max_y_distance, split_active, state_sojourns};
use crate::report::{pct, signed_pct, Table};
use crate::testsuite::{run_suite, Quantity, SuiteTest};
use cn_fit::Method;
use cn_fivegee::{adapt_model, Event5G, ScalingProfile, TABLE2};
use cn_statemachine::{replay_ue, BottomTransition, TopTransition};
use cn_stats::summary::BoxStats;
use cn_stats::variance_time::{bin_counts, default_scales, poisson_reference, variance_time_plot};
use cn_stats::{Ecdf, Exponential};
use cn_trace::{DeviceType, EventType, HourOfDay, Trace, MS_PER_SEC};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fmt_opt_pct(v: Option<f64>) -> String {
    v.map_or("-".into(), pct)
}

/// Table 1: breakdown of control-plane events of the modeled week.
pub fn table1(lab: &Lab) -> Table {
    let mut t = Table::new(
        "Table 1: Breakdown of control-plane events (modeled 7-day world)",
        &["Event Type", "P", "CC", "T"],
    );
    let world = lab.world();
    let shares: Vec<[f64; 6]> = DeviceType::ALL
        .iter()
        .map(|&d| breakdown_simple(world, d))
        .collect();
    for e in EventType::ALL {
        t.push_row(vec![
            e.mnemonic().to_string(),
            pct(shares[0][e.code() as usize]),
            pct(shares[1][e.code() as usize]),
            pct(shares[2][e.code() as usize]),
        ]);
    }
    t
}

/// Fig. 2 (one panel): box plot of events per device-hour across the 24
/// hours of day, for one (device, event).
pub fn fig2(lab: &Lab, device: DeviceType, event: EventType) -> Table {
    let mut t = Table::new(
        format!(
            "Fig. 2: {} of {} per device-hour",
            event.mnemonic(),
            device.abbrev()
        ),
        &["hour", "min", "q1", "median", "q3", "max", "mean"],
    );
    let world = lab.world().filter_device(device);
    let per_ue = world.per_ue();
    let n_days = lab.cfg.days.ceil() as u64;
    for hour in HourOfDay::all() {
        // One sample per (UE, day): the event count in that hour window.
        let mut samples: Vec<f64> = Vec::new();
        for (_, events) in per_ue.iter() {
            let mut per_day = vec![0u32; n_days as usize];
            for r in events {
                if r.event == event && r.t.hour_of_day() == hour {
                    let d = (r.t.day() as usize).min(n_days as usize - 1);
                    per_day[d] += 1;
                }
            }
            samples.extend(per_day.into_iter().map(f64::from));
        }
        let stats = BoxStats::from_samples(&samples).unwrap_or(BoxStats {
            min: 0.0,
            q1: 0.0,
            median: 0.0,
            q3: 0.0,
            max: 0.0,
            mean: 0.0,
            n: 0,
        });
        t.push_row(vec![
            hour.to_string(),
            format!("{:.0}", stats.min),
            format!("{:.1}", stats.q1),
            format!("{:.1}", stats.median),
            format!("{:.1}", stats.q3),
            format!("{:.0}", stats.max),
            format!("{:.2}", stats.mean),
        ]);
    }
    t
}

/// Fig. 2 summary: peak-to-trough swing of the mean per-device-hour volume
/// for the four dominant event types (the paper's 2.27×–1309× claims).
pub fn fig2_summary(lab: &Lab) -> Table {
    let mut t = Table::new(
        "Fig. 2 summary: peak/trough ratio of mean events per device-hour",
        &["Device", "SRV_REQ", "S1_CONN_REL", "HO", "TAU"],
    );
    let world = lab.world();
    for device in DeviceType::ALL {
        let dev = world.filter_device(device);
        let ues = dev.ues().len().max(1) as f64;
        let days = lab.cfg.days.max(1.0 / 24.0);
        let mut row = vec![device.abbrev().to_string()];
        for event in [
            EventType::ServiceRequest,
            EventType::S1ConnRelease,
            EventType::Handover,
            EventType::Tau,
        ] {
            let mut by_hour = [0f64; 24];
            for r in dev.iter() {
                if r.event == event {
                    by_hour[r.t.hour_of_day().index()] += 1.0;
                }
            }
            for v in &mut by_hour {
                *v /= ues * days;
            }
            let max = by_hour.iter().copied().fold(f64::MIN, f64::max);
            let min = by_hour.iter().copied().fold(f64::MAX, f64::min);
            row.push(if min > 0.0 {
                format!("{:.1}x", max / min)
            } else {
                "inf".into()
            });
        }
        t.push_row(row);
    }
    t
}

/// Per-device event-time streams used by Fig. 3/Fig. 4: connected entries,
/// idle entries, HO times, TAU times, and busy-hour sojourn/gap samples.
struct Fig34Data {
    srv_times: Vec<u64>,
    rel_times: Vec<u64>,
    ho_times: Vec<u64>,
    tau_times: Vec<u64>,
    conn_sojourn_busy: Vec<f64>,
    idle_sojourn_busy: Vec<f64>,
    ho_gaps_busy: Vec<f64>,
    tau_gaps_busy: Vec<f64>,
}

/// Same (day, hour) window — gaps spanning windows are never observed.
fn same_window(a: cn_trace::Timestamp, b: cn_trace::Timestamp) -> bool {
    (a.day(), a.hour_of_day()) == (b.day(), b.hour_of_day())
}

fn fig34_data(lab: &Lab, device: DeviceType) -> Fig34Data {
    let busy = HourOfDay(lab.cfg.busy_hour);
    let world = lab.world().filter_device(device);
    let mut d = Fig34Data {
        srv_times: Vec::new(),
        rel_times: Vec::new(),
        ho_times: Vec::new(),
        tau_times: Vec::new(),
        conn_sojourn_busy: Vec::new(),
        idle_sojourn_busy: Vec::new(),
        ho_gaps_busy: Vec::new(),
        tau_gaps_busy: Vec::new(),
    };
    for (_, events) in world.per_ue().iter() {
        let mut last_ho: Option<cn_trace::Timestamp> = None;
        let mut last_tau: Option<cn_trace::Timestamp> = None;
        for r in events {
            match r.event {
                EventType::ServiceRequest => d.srv_times.push(r.t.as_millis()),
                EventType::S1ConnRelease => d.rel_times.push(r.t.as_millis()),
                EventType::Handover => {
                    d.ho_times.push(r.t.as_millis());
                    // Within-window gaps only, per the paper's §4.1.1
                    // preprocessing.
                    if let Some(prev) = last_ho {
                        if r.t.hour_of_day() == busy && same_window(prev, r.t) {
                            d.ho_gaps_busy
                                .push(r.t.since(prev) as f64 / MS_PER_SEC as f64);
                        }
                    }
                    last_ho = Some(r.t);
                }
                EventType::Tau => {
                    d.tau_times.push(r.t.as_millis());
                    if let Some(prev) = last_tau {
                        if r.t.hour_of_day() == busy && same_window(prev, r.t) {
                            d.tau_gaps_busy
                                .push(r.t.since(prev) as f64 / MS_PER_SEC as f64);
                        }
                    }
                    last_tau = Some(r.t);
                }
                _ => {}
            }
        }
        let outcome = replay_ue(events);
        for s in &outcome.top_sojourns {
            if s.enter.hour_of_day() != busy {
                continue;
            }
            let secs = s.duration_ms as f64 / MS_PER_SEC as f64;
            match s.transition {
                TopTransition::ConnToIdle => d.conn_sojourn_busy.push(secs),
                TopTransition::IdleToConn => d.idle_sojourn_busy.push(secs),
                _ => {}
            }
        }
    }
    d
}

/// Fig. 3 companion: Hurst exponents of the four event streams (the
/// aggregated-variance method is the variance–time plot in closed form;
/// `H = 0.5` is Poisson, `H > 0.5` is the long-range dependence the paper
/// observes).
pub fn fig3_hurst(lab: &Lab) -> Table {
    let mut t = Table::new(
        "Fig. 3 companion: Hurst exponents of event streams (0.5 = Poisson)",
        &["Device", "SRV_REQ", "S1_CONN_REL", "HO", "TAU"],
    );
    let end = lab.world().end().map_or(0, |e| e.as_millis());
    for device in DeviceType::ALL {
        let data = fig34_data(lab, device);
        let mut row = vec![device.abbrev().to_string()];
        for times in [
            &data.srv_times,
            &data.rel_times,
            &data.ho_times,
            &data.tau_times,
        ] {
            let bins = bin_counts(times, 0, end);
            row.push(
                cn_stats::hurst_aggregated_variance(&bins, 8)
                    .map_or("-".into(), |e| format!("{:.2}", e.h)),
            );
        }
        t.push_row(row);
    }
    t
}

/// Fig. 3: variance–time plots for CONNECTED/IDLE entries and HO/TAU
/// arrivals vs the fitted-Poisson reference (phones by default).
pub fn fig3(lab: &Lab, device: DeviceType) -> Table {
    let mut t = Table::new(
        format!("Fig. 3: variance-time (normalized) for {}", device.name()),
        &[
            "scale_s",
            "CONN real",
            "CONN poisson",
            "IDLE real",
            "IDLE poisson",
            "HO real",
            "HO poisson",
            "TAU real",
            "TAU poisson",
        ],
    );
    let data = fig34_data(lab, device);
    let end = lab.world().end().map_or(0, |e| e.as_millis());
    if end == 0 {
        return t;
    }
    let scales = default_scales();
    let quantities = [
        &data.srv_times,
        &data.rel_times,
        &data.ho_times,
        &data.tau_times,
    ];
    // Per quantity: (scale → real normalized variance) and Poisson reference.
    let mut real: Vec<std::collections::HashMap<u64, f64>> = Vec::new();
    let mut rates: Vec<f64> = Vec::new();
    for times in quantities {
        let bins = bin_counts(times, 0, end);
        let vt = variance_time_plot(&bins, &scales);
        real.push(
            vt.into_iter()
                .map(|p| (p.scale_secs, p.normalized_variance))
                .collect(),
        );
        rates.push(times.len() as f64 / bins.len().max(1) as f64);
    }
    for &m in &scales {
        let mut row = vec![m.to_string()];
        for (q, rate) in real.iter().zip(&rates) {
            row.push(q.get(&m).map_or("-".into(), |v| format!("{v:.3e}")));
            row.push(if *rate > 0.0 {
                format!("{:.3e}", poisson_reference(*rate, m))
            } else {
                "-".into()
            });
        }
        t.push_row(row);
    }
    t
}

/// Fig. 4: range of real samples vs a same-size sample from the MLE-fitted
/// exponential, for the busy-hour CONNECTED/IDLE sojourns and HO/TAU
/// inter-arrivals (phones by default).
pub fn fig4(lab: &Lab, device: DeviceType) -> Table {
    let mut t = Table::new(
        format!(
            "Fig. 4: real vs fitted-Poisson sample ranges, busy hour, {}",
            device.name()
        ),
        &[
            "quantity", "source", "min_s", "p25_s", "median_s", "p75_s", "p99_s", "max_s",
        ],
    );
    let data = fig34_data(lab, device);
    let mut rng = StdRng::seed_from_u64(lab.cfg.seed ^ 0xF164);
    let quantities: [(&str, &[f64]); 4] = [
        ("CONNECTED", &data.conn_sojourn_busy),
        ("IDLE", &data.idle_sojourn_busy),
        ("HO", &data.ho_gaps_busy),
        ("TAU", &data.tau_gaps_busy),
    ];
    for (name, samples) in quantities {
        let Some(real) = Ecdf::new(samples.to_vec()) else {
            continue;
        };
        let mut push = |source: &str, e: &Ecdf| {
            t.push_row(vec![
                name.into(),
                source.into(),
                format!("{:.2}", e.min()),
                format!("{:.2}", e.quantile(0.25)),
                format!("{:.2}", e.quantile(0.5)),
                format!("{:.2}", e.quantile(0.75)),
                format!("{:.2}", e.quantile(0.99)),
                format!("{:.2}", e.max()),
            ]);
        };
        push("real", &real);
        if let Ok(fitted) = Exponential::fit(samples) {
            let synth: Vec<f64> = (0..samples.len())
                .map(|_| fitted.sample(&mut rng))
                .collect();
            if let Some(e) = Ecdf::new(synth) {
                push("poisson", &e);
            }
        }
    }
    t
}

/// Table 2: the 4G ↔ 5G event mapping.
pub fn table2() -> Table {
    let mut t = Table::new("Table 2: 4G / 5G event mapping", &["4G", "5G"]);
    for (e4, e5) in TABLE2 {
        t.push_row(vec![
            e4.mnemonic().to_string(),
            e5.map_or("-".to_string(), |g| g.mnemonic().to_string()),
        ]);
    }
    t
}

/// Table 3: the method matrix.
pub fn table3() -> Table {
    let mut t = Table::new(
        "Table 3: Comparison of modeling methods",
        &["Method", "State Machine", "Distribution", "UE Clustering"],
    );
    for m in Method::ALL {
        t.push_row(vec![
            m.name().into(),
            match m.machine() {
                cn_fit::StateMachineKind::EmmEcm => "EMM-ECM".into(),
                cn_fit::StateMachineKind::TwoLevel => "2-level".into(),
            },
            match m.distribution() {
                cn_fit::DistributionKind::Poisson => "Poisson".into(),
                cn_fit::DistributionKind::EmpiricalCdf => "CDF".into(),
            },
            if m.clustered() {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    t
}

/// Tables 4 / 11: differences of event breakdowns between the real trace
/// and the synthesized traces of all four methods, for one scenario.
pub fn table4(lab: &Lab, scenario: Scenario) -> Table {
    let mut headers: Vec<String> = vec!["Event".into()];
    for device in DeviceType::ALL {
        headers.push(format!("{} Real", device.abbrev()));
        for m in Method::ALL {
            headers.push(format!("{} {}", device.abbrev(), m.name()));
        }
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let title = match scenario {
        Scenario::Two => "Table 4: breakdown differences, Scenario 2 (10x UEs)",
        Scenario::One => "Table 11: breakdown differences, Scenario 1 (1x UEs)",
    };
    let mut t = Table::new(title, &header_refs);

    // Per device: real + per-method synthesized breakdowns.
    let mut real = Vec::new();
    let mut synth = Vec::new();
    for device in DeviceType::ALL {
        real.push(breakdown(lab.real(scenario), device));
        let per_method: Vec<_> = Method::ALL
            .iter()
            .map(|&m| breakdown(lab.synth(m, scenario), device))
            .collect();
        synth.push(per_method);
    }
    for row in BreakdownRow::ALL {
        let mut cells = vec![row.label().to_string()];
        for (di, _) in DeviceType::ALL.iter().enumerate() {
            cells.push(pct(real[di].share(row)));
            for (mi, _) in Method::ALL.iter().enumerate() {
                let diff = synth[di][mi].share(row) - real[di].share(row);
                cells.push(signed_pct(diff));
            }
        }
        t.push_row(cells);
    }
    t
}

/// Table 5: maximum y-distance between CDFs of per-UE event counts and
/// state sojourns, B2 vs Ours, both scenarios.
pub fn table5(lab: &Lab) -> Table {
    let mut headers: Vec<String> = vec!["Quantity".into()];
    for s in [Scenario::One, Scenario::Two] {
        for device in DeviceType::ALL {
            for m in [Method::B2, Method::Ours] {
                headers.push(format!(
                    "S{} {} {}",
                    s.index() + 1,
                    device.abbrev(),
                    m.name()
                ));
            }
        }
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Table 5: max y-distance of per-UE count and sojourn CDFs (B2 vs Ours)",
        &header_refs,
    );

    let mut rows: Vec<Vec<String>> = vec![
        vec!["SRV_REQ".into()],
        vec!["S1_CONN_REL".into()],
        vec!["CONNECTED".into()],
        vec!["IDLE".into()],
    ];
    for s in [Scenario::One, Scenario::Two] {
        let mix = lab.cfg.scenario_mix(s);
        let real = lab.real(s);
        for device in DeviceType::ALL {
            let real_srv = events_per_ue(real, &mix, device, EventType::ServiceRequest);
            let real_rel = events_per_ue(real, &mix, device, EventType::S1ConnRelease);
            let (real_conn, real_idle) = state_sojourns(real, device);
            for m in [Method::B2, Method::Ours] {
                let synth = lab.synth(m, s);
                let srv = events_per_ue(synth, &mix, device, EventType::ServiceRequest);
                let rel = events_per_ue(synth, &mix, device, EventType::S1ConnRelease);
                let (conn, idle) = state_sojourns(synth, device);
                rows[0].push(fmt_opt_pct(max_y_distance(&real_srv, &srv)));
                rows[1].push(fmt_opt_pct(max_y_distance(&real_rel, &rel)));
                rows[2].push(fmt_opt_pct(max_y_distance(&real_conn, &conn)));
                rows[3].push(fmt_opt_pct(max_y_distance(&real_idle, &idle)));
            }
        }
    }
    for row in rows {
        t.push_row(row);
    }
    t
}

/// Table 6: max y-distance for inactive (≤2 events) vs active UE groups,
/// connected cars and tablets, Ours.
pub fn table6(lab: &Lab) -> Table {
    let mut headers: Vec<String> = vec!["Event".into()];
    for s in [Scenario::One, Scenario::Two] {
        for device in [DeviceType::ConnectedCar, DeviceType::Tablet] {
            headers.push(format!("S{} {} inact/act", s.index() + 1, device.abbrev()));
        }
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Table 6: max y-distance per UE-activity group (Ours)",
        &header_refs,
    );
    let mut rows: Vec<Vec<String>> = vec![vec!["SRV_REQ".into()], vec!["S1_CONN_REL".into()]];
    for s in [Scenario::One, Scenario::Two] {
        let mix = lab.cfg.scenario_mix(s);
        let real = lab.real(s);
        let synth = lab.synth(Method::Ours, s);
        for device in [DeviceType::ConnectedCar, DeviceType::Tablet] {
            for (ri, event) in [EventType::ServiceRequest, EventType::S1ConnRelease]
                .into_iter()
                .enumerate()
            {
                let rc = events_per_ue(real, &mix, device, event);
                let sc = events_per_ue(synth, &mix, device, event);
                let (ri_in, ri_act) = split_active(&rc, 2.0);
                let (si_in, si_act) = split_active(&sc, 2.0);
                let d_in = max_y_distance(&ri_in, &si_in);
                let d_act = max_y_distance(&ri_act, &si_act);
                rows[ri].push(format!("{}/{}", fmt_opt_pct(d_in), fmt_opt_pct(d_act)));
            }
        }
    }
    for row in rows {
        t.push_row(row);
    }
    t
}

/// Table 7: projected breakdown of 5G NSA and SA control-plane events,
/// from the HO-scaled (and, for SA, TAU-stripped) models.
pub fn table7(lab: &Lab) -> Table {
    let mut t = Table::new(
        "Table 7: projected 5G NSA / SA event breakdown",
        &[
            "Event (NSA/SA)",
            "P NSA",
            "P SA",
            "CC NSA",
            "CC SA",
            "T NSA",
            "T SA",
        ],
    );
    let base = lab.models(Method::Ours);
    let nsa_models = adapt_model(base, &ScalingProfile::NSA);
    let sa_models = adapt_model(base, &ScalingProfile::SA);
    let nsa = lab.synth_days(&nsa_models, lab.cfg.fiveg_days, lab.cfg.seed ^ 0x5f01);
    let sa = lab.synth_days(&sa_models, lab.cfg.fiveg_days, lab.cfg.seed ^ 0x5f02);
    let shares = |trace: &Trace, d: DeviceType| breakdown_simple(trace, d);
    let label = |e: EventType| match Event5G::from_4g(e) {
        Some(g) if g.mnemonic() != e.mnemonic() => format!("{}/{}", e.mnemonic(), g.mnemonic()),
        Some(_) => e.mnemonic().to_string(),
        None => format!("{}/-", e.mnemonic()),
    };
    for e in EventType::ALL {
        let mut row = vec![label(e)];
        for device in DeviceType::ALL {
            let n = shares(&nsa, device)[e.code() as usize];
            let s = shares(&sa, device)[e.code() as usize];
            row.push(pct(n));
            row.push(if e == EventType::Tau {
                "-".into()
            } else {
                pct(s)
            });
        }
        t.push_row(row);
    }
    t
}

/// Extension: Table 9 with the extended family battery (adds LogNormal
/// and Gamma rows).
pub fn table9_extended(lab: &Lab) -> Table {
    use crate::testsuite::run_suite_with;
    let mut headers: Vec<String> = vec!["Test".into(), "Device".into()];
    headers.extend(Quantity::all().iter().map(|q| q.label().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Extension: Table 9 with LogNormal and Gamma rows",
        &header_refs,
    );
    let result = run_suite_with(lab.world(), true, &lab.cfg.clustering, &SuiteTest::EXTENDED);
    for (ti, test) in SuiteTest::EXTENDED.iter().enumerate() {
        for device in DeviceType::ALL {
            let mut row = vec![test.label(), device.abbrev().into()];
            match result.main.get(&(ti, device)) {
                Some(cells) => row.extend(cells.iter().map(|c| fmt_opt_pct(*c))),
                None => row.extend(std::iter::repeat_n("-".to_string(), Quantity::all().len())),
            }
            t.push_row(row);
        }
    }
    t
}

/// Tables 8/9: distribution-test pass rates without (`clustered = false`,
/// Table 8) or with (`true`, Table 9) UE clustering.
pub fn table8or9(lab: &Lab, clustered: bool) -> Table {
    let title = if clustered {
        "Table 9: % of (cluster, hour) combos passing the tests, WITH clustering"
    } else {
        "Table 8: % of hour combos passing the tests, NO clustering"
    };
    let mut headers: Vec<String> = vec!["Test".into(), "Device".into()];
    headers.extend(Quantity::all().iter().map(|q| q.label().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(title, &header_refs);
    let result = run_suite(lab.world(), clustered, &lab.cfg.clustering);
    for (ti, test) in SuiteTest::ALL.iter().enumerate() {
        for device in DeviceType::ALL {
            let mut row = vec![test.label(), device.abbrev().into()];
            match result.main.get(&(ti, device)) {
                Some(cells) => row.extend(cells.iter().map(|c| fmt_opt_pct(*c))),
                None => row.extend(std::iter::repeat_n("-".to_string(), Quantity::all().len())),
            }
            t.push_row(row);
        }
    }
    t
}

/// Table 10: pass rates for the nine second-level transitions.
pub fn table10(lab: &Lab) -> Table {
    let mut headers: Vec<String> = vec!["Test".into(), "Device".into()];
    headers.extend(BottomTransition::ALL.iter().map(|b| b.label().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Table 10: % of (cluster, hour) combos passing, second-level transitions",
        &header_refs,
    );
    let result = run_suite(lab.world(), true, &lab.cfg.clustering);
    for (ti, test) in SuiteTest::ALL.iter().enumerate() {
        for device in DeviceType::ALL {
            let mut row = vec![test.label(), device.abbrev().into()];
            match result.bottom.get(&(ti, device)) {
                Some(cells) => row.extend(cells.iter().map(|c| fmt_opt_pct(*c))),
                None => row.extend(std::iter::repeat_n(
                    "-".to_string(),
                    BottomTransition::ALL.len(),
                )),
            }
            t.push_row(row);
        }
    }
    t
}

/// Fig. 7: CDFs of per-UE SRV_REQ / S1_CONN_REL counts — real vs Ours vs
/// Base, Scenario 2.
pub fn fig7(lab: &Lab, event: EventType) -> Table {
    let mut headers: Vec<String> = vec!["count <= k".into()];
    for device in DeviceType::ALL {
        for src in ["real", "Ours", "Base"] {
            headers.push(format!("{} {}", device.abbrev(), src));
        }
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        format!("Fig. 7: CDF of {} per UE (Scenario 2)", event.mnemonic()),
        &header_refs,
    );
    let mix = lab.cfg.scenario_mix(Scenario::Two);
    let mut ecdfs = Vec::new();
    for device in DeviceType::ALL {
        for trace in [
            lab.real(Scenario::Two),
            lab.synth(Method::Ours, Scenario::Two),
            lab.synth(Method::Base, Scenario::Two),
        ] {
            ecdfs.push(Ecdf::new(events_per_ue(trace, &mix, device, event)));
        }
    }
    for k in 0..=10u32 {
        let mut row = vec![k.to_string()];
        for e in &ecdfs {
            row.push(
                e.as_ref()
                    .map_or("-".into(), |e| format!("{:.3}", e.cdf(f64::from(k)))),
            );
        }
        t.push_row(row);
    }
    t
}

/// Extension (not a paper artifact): diurnal fidelity of a full-day
/// synthesis. The per-hour event volumes of 24 generated hours are
/// compared with the modeled world's mean weekday profile; the last row
/// reports the Pearson correlation of the two 24-point profiles per
/// device (≥0.9 means the generator reproduces the daily rhythm, not just
/// the busy hour).
pub fn diurnal_fidelity(lab: &Lab) -> Table {
    let mut t = Table::new(
        "Extension: diurnal fidelity of a 24h synthesis (events per hour)",
        &[
            "hour", "P real", "P synth", "CC real", "CC synth", "T real", "T synth",
        ],
    );
    // Real: mean weekday profile of the modeled world (per-hour volume
    // averaged over whole days).
    let world = lab.world();
    let n_days = lab.cfg.days.max(1.0);
    let mut real = [[0f64; 24]; 3];
    for r in world.iter() {
        real[r.device.code() as usize][r.t.hour_of_day().index()] += 1.0 / n_days;
    }
    // Synth: one generated day for the model population.
    let config = cn_gen::GenConfig::new(
        lab.cfg.model_mix,
        cn_trace::Timestamp::at_hour(0, 0),
        24.0,
        lab.cfg.seed ^ 0xD1E1,
    );
    let synth_trace = cn_gen::generate(lab.models(Method::Ours), &config);
    let mut synth = [[0f64; 24]; 3];
    for r in synth_trace.iter() {
        synth[r.device.code() as usize][r.t.hour_of_day().index()] += 1.0;
    }
    for h in 0..24 {
        t.push_row(vec![
            format!("{h:02}h"),
            format!("{:.0}", real[0][h]),
            format!("{:.0}", synth[0][h]),
            format!("{:.0}", real[1][h]),
            format!("{:.0}", synth[1][h]),
            format!("{:.0}", real[2][h]),
            format!("{:.0}", synth[2][h]),
        ]);
    }
    let pearson = |a: &[f64; 24], b: &[f64; 24]| {
        let ma = a.iter().sum::<f64>() / 24.0;
        let mb = b.iter().sum::<f64>() / 24.0;
        let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let va: f64 = a.iter().map(|x| (x - ma).powi(2)).sum();
        let vb: f64 = b.iter().map(|y| (y - mb).powi(2)).sum();
        if va > 0.0 && vb > 0.0 {
            cov / (va.sqrt() * vb.sqrt())
        } else {
            0.0
        }
    };
    t.push_row(vec![
        "corr".into(),
        String::new(),
        format!("{:.3}", pearson(&real[0], &synth[0])),
        String::new(),
        format!("{:.3}", pearson(&real[1], &synth[1])),
        String::new(),
        format!("{:.3}", pearson(&real[2], &synth[2])),
    ]);
    t
}

/// Run every experiment, in paper order (the repro binary's `all`).
pub fn all(lab: &Lab) -> Vec<Table> {
    let mut out = vec![table1(lab), fig2_summary(lab)];
    for device in DeviceType::ALL {
        for event in [
            EventType::ServiceRequest,
            EventType::S1ConnRelease,
            EventType::Handover,
            EventType::Tau,
        ] {
            out.push(fig2(lab, device, event));
        }
    }
    out.push(fig3(lab, DeviceType::Phone));
    out.push(fig3_hurst(lab));
    out.push(fig4(lab, DeviceType::Phone));
    out.push(table2());
    out.push(table3());
    out.push(table8or9(lab, false));
    out.push(table8or9(lab, true));
    out.push(table10(lab));
    out.push(table4(lab, Scenario::Two));
    out.push(table5(lab));
    out.push(table6(lab));
    out.push(table4(lab, Scenario::One));
    out.push(fig7(lab, EventType::ServiceRequest));
    out.push(fig7(lab, EventType::S1ConnRelease));
    out.push(table7(lab));
    out.push(diurnal_fidelity(lab));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::ExperimentConfig;

    fn quick_lab() -> Lab {
        Lab::new(ExperimentConfig::quick())
    }

    #[test]
    fn static_tables_render() {
        let t2 = table2();
        assert_eq!(t2.rows.len(), 6);
        assert!(t2.render().contains("AN_REL"));
        let t3 = table3();
        assert_eq!(t3.rows.len(), 4);
        assert!(t3.render().contains("2-level"));
    }

    #[test]
    fn table1_shares_sum_to_one() {
        let lab = quick_lab();
        let t = table1(&lab);
        assert_eq!(t.rows.len(), 6);
        for col in 1..=3 {
            let sum: f64 = t
                .rows
                .iter()
                .map(|r| r[col].trim_end_matches('%').parse::<f64>().unwrap())
                .sum();
            assert!((sum - 100.0).abs() < 0.5, "column {col}: {sum}");
        }
    }

    #[test]
    fn fig2_has_24_hours() {
        let lab = quick_lab();
        let t = fig2(&lab, DeviceType::Phone, EventType::ServiceRequest);
        assert_eq!(t.rows.len(), 24);
    }

    #[test]
    fn table4_shape_holds_ours_beats_base() {
        let lab = quick_lab();
        let t = table4(&lab, Scenario::One);
        assert_eq!(t.rows.len(), 8);
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        // Column layout: Event, then per device [Real, Base, B1, B2, Ours].
        // (1) The two-level methods never misplace HO in IDLE; the EMM–ECM
        // baselines do (the paper's central qualitative claim).
        let ho_idle = &t.rows[BreakdownRow::HoIdle.index()];
        let mut base_leaks = false;
        for (di, _) in DeviceType::ALL.iter().enumerate() {
            let col0 = 1 + di * 5;
            assert_eq!(
                parse(&ho_idle[col0 + 4]).abs(),
                0.0,
                "Ours HO(IDLE) device {di}"
            );
            base_leaks |= parse(&ho_idle[col0 + 1]) > 0.0;
        }
        assert!(base_leaks, "no device shows the baseline HO(IDLE) leak");
        // (2) For connected cars (mobility-heavy) the total absolute error
        // of Ours is below Base's.
        let car0 = 1 + 5;
        let sum_abs = |method_off: usize| -> f64 {
            t.rows
                .iter()
                .map(|r| parse(&r[car0 + method_off]).abs())
                .sum()
        };
        let base = sum_abs(1);
        let ours = sum_abs(4);
        assert!(ours < base, "cars: Ours total error {ours} ≥ Base {base}");
    }

    #[test]
    fn table7_sa_has_no_tau() {
        let lab = quick_lab();
        let t = table7(&lab);
        let tau_row = t.rows.iter().find(|r| r[0].starts_with("TAU")).unwrap();
        // SA columns are 2, 4, 6.
        for col in [2, 4, 6] {
            assert_eq!(tau_row[col], "-");
        }
    }
}
