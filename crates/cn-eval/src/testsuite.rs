//! Statistical-test pass-rate tables (§4.1.2, Appendix A; Tables 8–10).
//!
//! For every (UE-cluster, hour-of-day, device) combination the paper pools
//! the member UEs' inter-arrival times per event type, the sojourn times of
//! the four EMM/ECM states, and (Table 10) the sojourn times of the nine
//! second-level transitions, fits each candidate distribution by MLE, and
//! runs the K–S test (plus Anderson–Darling for the exponential). A table
//! cell is the percentage of combinations that *pass* at the 5% level —
//! near zero everywhere, which is the paper's justification for empirical
//! CDFs.

use cn_cluster::ClusteringParams;
use cn_statemachine::{replay_ue, BottomTransition, TopTransition};
use cn_stats::fit::{fit_family, Family};
use cn_stats::{ad_test_exponential, ks_test};
use cn_trace::{DeviceType, EventType, Trace, TraceRecord, MS_PER_SEC};
use std::collections::HashMap;

/// Significance level used throughout (the paper's 5%).
pub const SIGNIFICANCE: f64 = 0.05;

/// Minimum pooled samples for a combination to be testable.
pub const MIN_SAMPLES: usize = 20;

/// The ten columns of Tables 8/9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quantity {
    /// Inter-arrival time of one event type.
    InterArrival(EventType),
    /// Sojourn in EMM-REGISTERED.
    Registered,
    /// Sojourn in EMM-DEREGISTERED.
    Deregistered,
    /// Sojourn in ECM-CONNECTED.
    Connected,
    /// Sojourn in ECM-IDLE.
    Idle,
}

impl Quantity {
    /// Tables 8/9 column order.
    pub fn all() -> Vec<Quantity> {
        let mut v: Vec<Quantity> = EventType::ALL
            .into_iter()
            .map(Quantity::InterArrival)
            .collect();
        v.extend([
            Quantity::Registered,
            Quantity::Deregistered,
            Quantity::Connected,
            Quantity::Idle,
        ]);
        v
    }

    /// Column label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            Quantity::InterArrival(e) => e.mnemonic(),
            Quantity::Registered => "REG.",
            Quantity::Deregistered => "DEREG.",
            Quantity::Connected => "CONN.",
            Quantity::Idle => "IDLE",
        }
    }
}

/// The tests of Tables 8–10 (rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuiteTest {
    /// K–S test against the MLE fit of a family.
    Ks(Family),
    /// Anderson–Darling exponentiality test (Poisson only).
    AdPoisson,
}

impl SuiteTest {
    /// Table row order: Poisson (K–S), Poisson (A²), Pareto, Weibull,
    /// Tcplib (K–S) — the paper's battery.
    pub const ALL: [SuiteTest; 5] = [
        SuiteTest::Ks(Family::Poisson),
        SuiteTest::AdPoisson,
        SuiteTest::Ks(Family::Pareto),
        SuiteTest::Ks(Family::Weibull),
        SuiteTest::Ks(Family::Tcplib),
    ];

    /// The paper's battery plus log-normal and Gamma (families the wider
    /// Internet-traffic literature also fits).
    pub const EXTENDED: [SuiteTest; 7] = [
        SuiteTest::Ks(Family::Poisson),
        SuiteTest::AdPoisson,
        SuiteTest::Ks(Family::Pareto),
        SuiteTest::Ks(Family::Weibull),
        SuiteTest::Ks(Family::Tcplib),
        SuiteTest::Ks(Family::LogNormal),
        SuiteTest::Ks(Family::Gamma),
    ];

    /// Row label matching the paper.
    pub fn label(self) -> String {
        match self {
            SuiteTest::Ks(f) => format!("{} (K-S)", f.name()),
            SuiteTest::AdPoisson => "Poisson (A2)".to_string(),
        }
    }

    /// Run the test on the samples: `Some(passed)` or `None` when the fit
    /// or test is undefined for these samples.
    pub fn run(self, samples: &[f64]) -> Option<bool> {
        match self {
            SuiteTest::Ks(family) => {
                let dist = fit_family(family, samples).ok()?;
                Some(ks_test(samples, &dist)?.passes(SIGNIFICANCE))
            }
            SuiteTest::AdPoisson => Some(ad_test_exponential(samples)?.passes(SIGNIFICANCE)),
        }
    }
}

/// Everything the suite needs from one UE, bucketed by hour-of-day.
struct SuiteObs {
    device: DeviceType,
    /// Inter-arrival gaps (seconds) per hour × event type.
    gaps: Vec<[Vec<f64>; 6]>,
    /// State sojourns (seconds) per hour × {REG, DEREG, CONN, IDLE}.
    states: Vec<[Vec<f64>; 4]>,
    /// Second-level transition sojourns per hour.
    bottom: Vec<HashMap<BottomTransition, Vec<f64>>>,
    /// Clustering features per hour (paper's four, §5.3).
    features: Vec<Vec<f64>>,
}

fn observe(events: &[TraceRecord], n_days: u64) -> SuiteObs {
    let device = events.first().map_or(DeviceType::Phone, |r| r.device);
    let mut gaps = vec![[const { Vec::new() }; 6]; 24];
    let mut states = vec![[const { Vec::new() }; 4]; 24];
    let mut bottom: Vec<HashMap<BottomTransition, Vec<f64>>> = vec![HashMap::new(); 24];
    let mut counts = [[0u32; 6]; 24];

    // Inter-arrival per event type, observed *within* each (day, hour)
    // window — the paper's §4.1.1 preprocessing never sees gaps that span
    // interval boundaries.
    let mut last_seen: [Option<cn_trace::Timestamp>; 6] = [None; 6];
    for r in events {
        let code = r.event.code() as usize;
        let h = r.t.hour_of_day().index();
        counts[h][code] += 1;
        if let Some(prev) = last_seen[code] {
            if (prev.day(), prev.hour_of_day()) == (r.t.day(), r.t.hour_of_day()) {
                gaps[h][code].push(r.t.since(prev) as f64 / MS_PER_SEC as f64);
            }
        }
        last_seen[code] = Some(r.t);
    }

    // State sojourns from replay; REG/DEREG from the attach/detach events.
    let outcome = replay_ue(events);
    for s in &outcome.top_sojourns {
        let h = s.enter.hour_of_day().index();
        let secs = s.duration_ms as f64 / MS_PER_SEC as f64;
        match s.transition {
            TopTransition::ConnToIdle | TopTransition::ConnToDereg => states[h][2].push(secs),
            TopTransition::IdleToConn | TopTransition::IdleToDereg => states[h][3].push(secs),
            TopTransition::DeregToConn => {}
        }
    }
    let mut last_attach: Option<u64> = None;
    let mut last_detach: Option<u64> = None;
    for r in events {
        match r.event {
            EventType::Attach => {
                if let Some(d) = last_detach {
                    let h = cn_trace::Timestamp::from_millis(d).hour_of_day().index();
                    states[h][1].push((r.t.as_millis() - d) as f64 / MS_PER_SEC as f64);
                }
                last_attach = Some(r.t.as_millis());
            }
            EventType::Detach => {
                if let Some(a) = last_attach {
                    let h = cn_trace::Timestamp::from_millis(a).hour_of_day().index();
                    states[h][0].push((r.t.as_millis() - a) as f64 / MS_PER_SEC as f64);
                }
                last_detach = Some(r.t.as_millis());
            }
            _ => {}
        }
    }
    for s in &outcome.bottom_sojourns {
        let h = s.enter.hour_of_day().index();
        bottom[h]
            .entry(s.transition)
            .or_default()
            .push(s.duration_ms as f64 / MS_PER_SEC as f64);
    }

    // Features: [srv count/day, std conn, rel count/day, std idle].
    let days = n_days.max(1) as f64;
    let features = (0..24)
        .map(|h| {
            vec![
                f64::from(counts[h][EventType::ServiceRequest.code() as usize]) / days,
                cn_stats::summary::std_dev(&states[h][2]),
                f64::from(counts[h][EventType::S1ConnRelease.code() as usize]) / days,
                cn_stats::summary::std_dev(&states[h][3]),
            ]
        })
        .collect();

    SuiteObs {
        device,
        gaps,
        states,
        bottom,
        features,
    }
}

/// Pass-rate results: `cell[(test, device)][column] = Some(pass fraction)`
/// or `None` when no combination was testable.
pub struct SuiteResult {
    /// Tables 8/9 cells (10 columns).
    pub main: HashMap<(usize, DeviceType), Vec<Option<f64>>>,
    /// Table 10 cells (9 second-level transition columns).
    pub bottom: HashMap<(usize, DeviceType), Vec<Option<f64>>>,
    /// Number of testable (cluster, hour) combinations per device.
    pub combos: HashMap<DeviceType, usize>,
}

/// Run the paper's test battery over a trace.
///
/// `clustered = false` reproduces Table 8 (pool all UEs of a device per
/// hour); `clustered = true` reproduces Tables 9/10.
pub fn run_suite(trace: &Trace, clustered: bool, params: &ClusteringParams) -> SuiteResult {
    run_suite_with(trace, clustered, params, &SuiteTest::ALL)
}

/// As [`run_suite`] with an explicit test battery (e.g.
/// [`SuiteTest::EXTENDED`]). Cell keys index into `tests`.
pub fn run_suite_with(
    trace: &Trace,
    clustered: bool,
    params: &ClusteringParams,
    tests: &[SuiteTest],
) -> SuiteResult {
    let n_days = trace
        .end()
        .map_or(1, |t| t.as_millis() / cn_trace::MS_PER_DAY + 1);
    let per_ue = trace.per_ue();
    let all_obs: Vec<SuiteObs> = per_ue.iter().map(|(_, ev)| observe(ev, n_days)).collect();

    let quantities = Quantity::all();
    let mut main: HashMap<(usize, DeviceType), Vec<(usize, usize)>> = HashMap::new();
    let mut bottom: HashMap<(usize, DeviceType), Vec<(usize, usize)>> = HashMap::new();
    let mut combos: HashMap<DeviceType, usize> = HashMap::new();

    for device in DeviceType::ALL {
        let dev_obs: Vec<&SuiteObs> = all_obs.iter().filter(|o| o.device == device).collect();
        if dev_obs.is_empty() {
            continue;
        }
        for hour in 0..24 {
            let groups: Vec<Vec<usize>> = if clustered {
                let features: Vec<Vec<f64>> =
                    dev_obs.iter().map(|o| o.features[hour].clone()).collect();
                cn_cluster::cluster(&features, params)
                    .clusters
                    .into_iter()
                    .map(|c| c.members)
                    .collect()
            } else {
                vec![(0..dev_obs.len()).collect()]
            };
            for members in groups {
                *combos.entry(device).or_insert(0) += 1;
                // Tables 8/9 columns.
                for (qi, q) in quantities.iter().enumerate() {
                    let mut pooled: Vec<f64> = Vec::new();
                    for &m in &members {
                        let o = dev_obs[m];
                        match q {
                            Quantity::InterArrival(e) => {
                                pooled.extend_from_slice(&o.gaps[hour][e.code() as usize])
                            }
                            Quantity::Registered => pooled.extend_from_slice(&o.states[hour][0]),
                            Quantity::Deregistered => pooled.extend_from_slice(&o.states[hour][1]),
                            Quantity::Connected => pooled.extend_from_slice(&o.states[hour][2]),
                            Quantity::Idle => pooled.extend_from_slice(&o.states[hour][3]),
                        }
                    }
                    if pooled.len() < MIN_SAMPLES {
                        continue;
                    }
                    for (ti, t) in tests.iter().enumerate() {
                        if let Some(passed) = t.run(&pooled) {
                            let cell = main
                                .entry((ti, device))
                                .or_insert_with(|| vec![(0, 0); quantities.len()]);
                            cell[qi].1 += 1;
                            if passed {
                                cell[qi].0 += 1;
                            }
                        }
                    }
                }
                // Table 10 columns.
                for (bi, bt) in BottomTransition::ALL.iter().enumerate() {
                    let mut pooled: Vec<f64> = Vec::new();
                    for &m in &members {
                        if let Some(s) = dev_obs[m].bottom[hour].get(bt) {
                            pooled.extend_from_slice(s);
                        }
                    }
                    if pooled.len() < MIN_SAMPLES {
                        continue;
                    }
                    for (ti, t) in tests.iter().enumerate() {
                        if let Some(passed) = t.run(&pooled) {
                            let cell = bottom
                                .entry((ti, device))
                                .or_insert_with(|| vec![(0, 0); BottomTransition::ALL.len()]);
                            cell[bi].1 += 1;
                            if passed {
                                cell[bi].0 += 1;
                            }
                        }
                    }
                }
            }
        }
    }

    let to_frac = |m: HashMap<(usize, DeviceType), Vec<(usize, usize)>>| {
        m.into_iter()
            .map(|(k, cells)| {
                let fracs = cells
                    .into_iter()
                    .map(|(p, t)| (t > 0).then(|| p as f64 / t as f64))
                    .collect();
                (k, fracs)
            })
            .collect()
    };
    SuiteResult {
        main: to_frac(main),
        bottom: to_frac(bottom),
        combos,
    }
}

/// Convenience for tests: Poisson K–S pass fraction over the *dominant*
/// columns (SRV_REQ, S1_CONN_REL, CONNECTED, IDLE) across devices. The
/// rare-event columns (ATCH/DTCH/TAU) have few samples per combination and
/// therefore low test power — the paper likewise reports its "below 3%"
/// claim for the non-ATCH/DTCH columns.
pub fn poisson_ks_overall(result: &SuiteResult) -> f64 {
    let dominant: Vec<usize> = Quantity::all()
        .iter()
        .enumerate()
        .filter(|(_, q)| {
            matches!(
                q,
                Quantity::InterArrival(EventType::ServiceRequest)
                    | Quantity::InterArrival(EventType::S1ConnRelease)
                    | Quantity::Connected
                    | Quantity::Idle
            )
        })
        .map(|(i, _)| i)
        .collect();
    let mut sum = 0.0;
    let mut n = 0usize;
    for ((ti, _), cells) in &result.main {
        if *ti != 0 {
            continue; // SuiteTest::ALL[0] = Poisson K–S
        }
        for &qi in &dominant {
            if let Some(f) = cells.get(qi).copied().flatten() {
                sum += f;
                n += 1;
            }
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_trace::PopulationMix;
    use cn_world::{generate_world, WorldConfig};

    #[test]
    fn quantity_columns() {
        let q = Quantity::all();
        assert_eq!(q.len(), 10);
        assert_eq!(q[0].label(), "ATCH");
        assert_eq!(q[9].label(), "IDLE");
    }

    #[test]
    fn suite_tests_run() {
        // Exponential data passes Poisson tests, fails nothing fatally.
        let samples: Vec<f64> = (1..=200).map(|i| (i as f64 * 0.37) % 7.0 + 0.01).collect();
        for t in SuiteTest::ALL {
            let _ = t.run(&samples); // must not panic; pass/fail is data-dependent
        }
        assert_eq!(SuiteTest::ALL[0].label(), "Poisson (K-S)");
        assert_eq!(SuiteTest::ALL[1].label(), "Poisson (A2)");
    }

    #[test]
    fn world_traffic_mostly_fails_poisson() {
        // The paper's headline negative result: bursty per-UE control
        // traffic is not Poisson. Our mechanistic world must reproduce it.
        let trace = generate_world(&WorldConfig::new(PopulationMix::new(60, 25, 15), 2.0, 31));
        let result = run_suite(&trace, false, &ClusteringParams::default());
        let overall = poisson_ks_overall(&result);
        // At unit-test scale (100 UEs, 2 days) the per-hour pools are small
        // and the K–S test is power-limited, so a minority of combinations
        // pass spuriously; at `repro --scale default` the dominant columns
        // are 0.0% across the board (see EXPERIMENTS.md).
        assert!(
            overall < 0.25,
            "Poisson K–S pass rate {overall} — world is too Poisson-like"
        );
        assert!(result.combos.values().all(|&c| c > 0));
    }

    #[test]
    fn extended_battery_adds_rows() {
        let trace = generate_world(&WorldConfig::new(PopulationMix::new(40, 15, 10), 1.0, 33));
        let result = run_suite_with(
            &trace,
            false,
            &ClusteringParams::default(),
            &SuiteTest::EXTENDED,
        );
        // LogNormal row (index 5) exists for phones.
        assert!(result.main.contains_key(&(5, DeviceType::Phone)));
        assert!(result.main.contains_key(&(6, DeviceType::Phone)));
    }

    #[test]
    fn clustering_produces_more_combos() {
        let trace = generate_world(&WorldConfig::new(PopulationMix::new(60, 25, 15), 2.0, 32));
        let plain = run_suite(&trace, false, &ClusteringParams::default());
        let params = ClusteringParams {
            theta_n: 5,
            ..Default::default()
        };
        let clustered = run_suite(&trace, true, &params);
        let sum = |r: &SuiteResult| r.combos.values().sum::<usize>();
        assert!(sum(&clustered) > sum(&plain));
    }
}
