//! The experiment lab: shared, lazily computed artifacts.
//!
//! Reproducing the paper's evaluation needs a handful of expensive
//! artifacts — the 7-day "real" world trace, four fitted model sets (Base,
//! B1, B2, Ours), two validation-scenario real traces, and synthesized
//! traces per (method, scenario). [`Lab`] memoizes each behind a
//! `OnceLock` so the full table battery shares work.

use crate::report::Table;
use cn_cluster::ClusteringParams;
use cn_fit::{fit, FitConfig, Method, ModelSet};
use cn_gen::{generate, GenConfig};
use cn_trace::{PopulationMix, Timestamp, Trace, MS_PER_HOUR};
use cn_world::{generate_world, WorldConfig};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Validation scenarios of §8.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scenario {
    /// Scenario 1: a population the size of the modeled trace (≈1×).
    One,
    /// Scenario 2: ten times the modeled population.
    Two,
}

impl Scenario {
    /// Index usable for per-scenario arrays.
    pub const fn index(self) -> usize {
        match self {
            Scenario::One => 0,
            Scenario::Two => 1,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::One => "Scenario 1",
            Scenario::Two => "Scenario 2",
        }
    }
}

/// Scale and seed configuration of an experiment battery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Population of the modeled ("training") world trace.
    pub model_mix: PopulationMix,
    /// Scenario 1 validation population (paper: 38K ≈ 1×).
    pub scenario1_mix: PopulationMix,
    /// Scenario 2 validation population (paper: 380K = 10×).
    pub scenario2_mix: PopulationMix,
    /// Length of the modeled trace in days (paper: 7).
    pub days: f64,
    /// Length of the synthesized 5G trace in days (Table 7).
    pub fiveg_days: f64,
    /// Master seed.
    pub seed: u64,
    /// The "busy hour" used for the validation scenarios.
    pub busy_hour: u8,
    /// Clustering thresholds.
    pub clustering: ClusteringParams,
}

impl ExperimentConfig {
    /// Small configuration for tests and smoke runs (seconds, not minutes).
    pub fn quick() -> ExperimentConfig {
        ExperimentConfig {
            model_mix: PopulationMix::new(60, 25, 15),
            scenario1_mix: PopulationMix::new(60, 25, 15),
            scenario2_mix: PopulationMix::new(180, 75, 45),
            days: 2.0,
            fiveg_days: 1.0,
            seed: 2024,
            busy_hour: 18,
            clustering: ClusteringParams {
                theta_n: 20,
                ..ClusteringParams::default()
            },
        }
    }

    /// Default reproduction scale: ~1/20 of the paper's populations, same
    /// structure (7-day modeled week, 1× and 10× validation scenarios).
    /// Runs the full battery in minutes on a laptop.
    pub fn default_scale() -> ExperimentConfig {
        ExperimentConfig {
            model_mix: PopulationMix::new(1_170, 465, 230),
            scenario1_mix: PopulationMix::new(1_190, 475, 235),
            scenario2_mix: PopulationMix::new(11_900, 4_750, 2_350),
            days: 7.0,
            fiveg_days: 2.0,
            seed: 2023,
            busy_hour: 18,
            clustering: ClusteringParams {
                theta_n: 60,
                ..ClusteringParams::default()
            },
        }
    }

    /// The paper's full scale (37,325 modeled UEs; 38K / 380K scenarios).
    /// Hours of compute; use `default_scale` unless you mean it.
    pub fn paper_scale() -> ExperimentConfig {
        ExperimentConfig {
            model_mix: PopulationMix::PAPER,
            scenario1_mix: PopulationMix::new(23_810, 9_475, 4_715),
            scenario2_mix: PopulationMix::new(238_100, 94_750, 47_150),
            days: 7.0,
            fiveg_days: 7.0,
            seed: 2023,
            busy_hour: 18,
            clustering: ClusteringParams::default(),
        }
    }

    /// Population of a scenario.
    pub fn scenario_mix(&self, s: Scenario) -> PopulationMix {
        match s {
            Scenario::One => self.scenario1_mix,
            Scenario::Two => self.scenario2_mix,
        }
    }
}

/// Memoized experiment artifacts.
pub struct Lab {
    /// The configuration this lab runs at.
    pub cfg: ExperimentConfig,
    world: OnceLock<Trace>,
    real: [OnceLock<Trace>; 2],
    models: [OnceLock<ModelSet>; 4],
    synth: [[OnceLock<Trace>; 2]; 4],
}

impl Lab {
    /// Create a lab for a configuration (computes nothing yet).
    pub fn new(cfg: ExperimentConfig) -> Lab {
        Lab {
            cfg,
            world: OnceLock::new(),
            real: std::array::from_fn(|_| OnceLock::new()),
            models: std::array::from_fn(|_| OnceLock::new()),
            synth: std::array::from_fn(|_| std::array::from_fn(|_| OnceLock::new())),
        }
    }

    /// The modeled ("training") world trace: `days` of the model
    /// population.
    pub fn world(&self) -> &Trace {
        self.world.get_or_init(|| {
            generate_world(&WorldConfig::new(
                self.cfg.model_mix,
                self.cfg.days,
                self.cfg.seed,
            ))
        })
    }

    /// The real busy-hour trace of a validation scenario: an independently
    /// seeded world of the scenario population, windowed to
    /// `[busy_hour, busy_hour+1)` — the paper samples fresh UEs of the
    /// corresponding size from the same carrier.
    pub fn real(&self, scenario: Scenario) -> &Trace {
        self.real[scenario.index()].get_or_init(|| {
            let mix = self.cfg.scenario_mix(scenario);
            let horizon_days = f64::from(self.cfg.busy_hour + 1) / 24.0;
            let seed = self.cfg.seed ^ (0xBEEF + scenario.index() as u64);
            let full = generate_world(&WorldConfig::new(mix, horizon_days, seed));
            full.window(
                Timestamp::at_hour(0, self.cfg.busy_hour),
                Timestamp::at_hour(0, self.cfg.busy_hour + 1),
            )
        })
    }

    /// The fitted model set of a method.
    pub fn models(&self, method: Method) -> &ModelSet {
        let idx = Method::ALL
            .iter()
            .position(|&m| m == method)
            .expect("known method");
        self.models[idx].get_or_init(|| {
            let mut config = FitConfig::new(method);
            config.clustering = self.cfg.clustering;
            config.n_days = self.cfg.days.ceil() as u64;
            fit(self.world(), &config)
        })
    }

    /// A synthesized busy-hour trace for (method, scenario).
    pub fn synth(&self, method: Method, scenario: Scenario) -> &Trace {
        let midx = Method::ALL
            .iter()
            .position(|&m| m == method)
            .expect("known method");
        self.synth[midx][scenario.index()].get_or_init(|| {
            let config = GenConfig::new(
                self.cfg.scenario_mix(scenario),
                Timestamp::at_hour(0, self.cfg.busy_hour),
                1.0,
                self.cfg.seed ^ ((0xC0DE + (midx as u64)) << 8) ^ scenario.index() as u64,
            );
            generate(self.models(method), &config)
        })
    }

    /// Synthesize a multi-day trace from an arbitrary model set (used for
    /// the 5G projections of Table 7).
    pub fn synth_days(&self, models: &ModelSet, days: f64, seed: u64) -> Trace {
        let config = GenConfig::new(
            self.cfg.model_mix,
            Timestamp::at_hour(0, 0),
            days * 24.0,
            seed,
        );
        generate(models, &config)
    }

    /// Duration of one busy-hour window in milliseconds (for rate math).
    pub fn busy_window_ms(&self) -> u64 {
        MS_PER_HOUR
    }
}

/// Render a small "lab scale" summary table (used by the repro binary).
pub fn scale_summary(cfg: &ExperimentConfig) -> Table {
    let mut t = Table::new("Lab configuration", &["parameter", "value"]);
    t.push_row(vec![
        "modeled UEs".into(),
        cfg.model_mix.total().to_string(),
    ]);
    t.push_row(vec!["modeled days".into(), cfg.days.to_string()]);
    t.push_row(vec![
        "scenario 1 UEs".into(),
        cfg.scenario1_mix.total().to_string(),
    ]);
    t.push_row(vec![
        "scenario 2 UEs".into(),
        cfg.scenario2_mix.total().to_string(),
    ]);
    t.push_row(vec!["busy hour".into(), format!("{:02}h", cfg.busy_hour)]);
    t.push_row(vec!["seed".into(), cfg.seed.to_string()]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_trace::DeviceType;

    #[test]
    fn lab_memoizes() {
        let lab = Lab::new(ExperimentConfig::quick());
        let a = lab.world() as *const Trace;
        let b = lab.world() as *const Trace;
        assert_eq!(a, b);
        assert!(!lab.world().is_empty());
    }

    #[test]
    fn real_traces_are_busy_hour_windows() {
        let lab = Lab::new(ExperimentConfig::quick());
        let r = lab.real(Scenario::One);
        assert!(!r.is_empty());
        for rec in r.iter() {
            assert_eq!(rec.t.hour_of_day().get(), 18);
        }
    }

    #[test]
    fn synth_covers_population_devices() {
        let lab = Lab::new(ExperimentConfig::quick());
        let s = lab.synth(Method::Ours, Scenario::One);
        assert!(!s.is_empty());
        let devices: std::collections::HashSet<DeviceType> = s.iter().map(|r| r.device).collect();
        assert_eq!(devices.len(), 3, "missing device types: {devices:?}");
    }

    #[test]
    fn scenario_two_is_larger() {
        let cfg = ExperimentConfig::quick();
        assert!(cfg.scenario2_mix.total() > cfg.scenario1_mix.total());
        assert_eq!(Scenario::One.name(), "Scenario 1");
    }
}
