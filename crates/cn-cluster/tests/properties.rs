//! Property-based tests for the adaptive clustering scheme.

use cn_cluster::{cluster, ClusteringParams};
use proptest::prelude::*;

fn arb_features() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0f64..200.0, 4..=4), 0..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Clustering is a partition: every UE in exactly one cluster, and
    /// assignments agree with the member lists.
    #[test]
    fn clustering_is_partition(features in arb_features(), theta_n in 1usize..100) {
        let params = ClusteringParams { theta_f: 5.0, theta_n, ..Default::default() };
        let c = cluster(&features, &params);
        prop_assert_eq!(c.assignments.len(), features.len());
        let total: usize = c.clusters.iter().map(|i| i.members.len()).sum();
        prop_assert_eq!(total, features.len());
        let mut seen = vec![false; features.len()];
        for info in &c.clusters {
            prop_assert!(!info.members.is_empty(), "empty cluster emitted");
            for &m in &info.members {
                prop_assert!(!seen[m]);
                seen[m] = true;
                prop_assert_eq!(c.assignments[m], info.id);
            }
        }
    }

    /// Every final cluster satisfies a stop criterion: similar (< θ_f range
    /// on every feature) or small (< θ_n members) — or hit the depth guard,
    /// which requires an enormous dynamic range we don't generate here.
    #[test]
    fn leaves_satisfy_stop_criteria(features in arb_features(), theta_n in 1usize..100) {
        let params = ClusteringParams { theta_f: 5.0, theta_n, ..Default::default() };
        let c = cluster(&features, &params);
        for info in &c.clusters {
            let similar = info
                .feature_min
                .iter()
                .zip(&info.feature_max)
                .all(|(lo, hi)| hi - lo < params.theta_f);
            prop_assert!(
                similar || info.members.len() < params.theta_n,
                "cluster {:?}: range not similar and size {} >= {}",
                info.id, info.members.len(), params.theta_n
            );
        }
    }

    /// Clustering is deterministic.
    #[test]
    fn deterministic(features in arb_features()) {
        let params = ClusteringParams::default();
        let a = cluster(&features, &params);
        let b = cluster(&features, &params);
        prop_assert_eq!(a, b);
    }

    /// Cluster bounding data is consistent: member features lie inside
    /// [feature_min, feature_max].
    #[test]
    fn member_features_within_bounds(features in arb_features()) {
        let params = ClusteringParams { theta_f: 10.0, theta_n: 5, ..Default::default() };
        let c = cluster(&features, &params);
        for info in &c.clusters {
            for &m in &info.members {
                for (d, &f) in features[m].iter().enumerate() {
                    prop_assert!(f >= info.feature_min[d] - 1e-9);
                    prop_assert!(f <= info.feature_max[d] + 1e-9);
                }
            }
        }
    }
}
