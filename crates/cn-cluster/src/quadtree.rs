//! The recursive adaptive partition.
//!
//! Algorithm (§5.3): start with all UEs in one cluster spanning the
//! complete feature space. For each cluster, stop if either every feature's
//! value range (max − min over members) is below `θ_f`, or the member count
//! is below `θ_n`. Otherwise cut the cluster's feature box into equal-sized
//! sub-boxes — halving the (up to) `max_split_dims` dimensions with the
//! largest member value range, i.e. a quadtree for the default of 2 —
//! assign members to sub-boxes, and recurse. Leaves of the resulting tree
//! are the final clusters.

use serde::{Deserialize, Serialize};

/// Identifier of a final cluster (dense, 0-based, per clustering run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ClusterId(pub u32);

impl ClusterId {
    /// Index usable for per-cluster vectors.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ClusterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Thresholds controlling the adaptive partition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusteringParams {
    /// Similarity threshold `θ_f`: a cluster is "similar enough" when every
    /// feature's member value range is `< θ_f`. The paper's binary search
    /// found `θ_f = 5` sufficient.
    pub theta_f: f64,
    /// Size threshold `θ_n`: clusters smaller than this stop splitting.
    /// The paper uses `θ_n = 1000`.
    pub theta_n: usize,
    /// Number of dimensions halved per split (2 ⇒ quadtree, the paper's
    /// configuration).
    pub max_split_dims: usize,
    /// Hard recursion depth bound (defensive; splits always shrink boxes so
    /// this only triggers on pathological input).
    pub max_depth: usize,
}

impl Default for ClusteringParams {
    fn default() -> Self {
        ClusteringParams {
            theta_f: 5.0,
            theta_n: 1_000,
            max_split_dims: 2,
            max_depth: 64,
        }
    }
}

/// Summary of one final cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterInfo {
    /// The cluster id.
    pub id: ClusterId,
    /// Indices (into the input feature slice) of member UEs.
    pub members: Vec<usize>,
    /// Per-dimension minimum of member feature values.
    pub feature_min: Vec<f64>,
    /// Per-dimension maximum of member feature values.
    pub feature_max: Vec<f64>,
}

impl ClusterInfo {
    /// Number of member UEs.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the cluster has no members (never produced by [`cluster`]).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Result of a clustering run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Clustering {
    /// For every input index, its assigned cluster.
    pub assignments: Vec<ClusterId>,
    /// The final clusters (every input index appears in exactly one).
    pub clusters: Vec<ClusterInfo>,
}

impl Clustering {
    /// Number of final clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Fraction of inputs assigned to each cluster, in cluster-id order.
    pub fn shares(&self) -> Vec<f64> {
        let n = self.assignments.len().max(1) as f64;
        self.clusters
            .iter()
            .map(|c| c.members.len() as f64 / n)
            .collect()
    }

    /// Cluster-quality score: the fraction of the population's total
    /// feature variance removed by clustering (`1 − Σ within / total`,
    /// summed over dimensions; 0 = useless partition, → 1 = tight
    /// clusters). `features` must be the clustering input.
    pub fn dispersion_reduction(&self, features: &[Vec<f64>]) -> f64 {
        if features.is_empty() || self.clusters.is_empty() {
            return 0.0;
        }
        let dim = features[0].len();
        let n = features.len() as f64;
        let mut total = 0.0;
        let mut within = 0.0;
        for d in 0..dim {
            let mean: f64 = features.iter().map(|f| f[d]).sum::<f64>() / n;
            total += features.iter().map(|f| (f[d] - mean).powi(2)).sum::<f64>();
            for c in &self.clusters {
                let m = c.members.len() as f64;
                let cmean: f64 = c.members.iter().map(|&i| features[i][d]).sum::<f64>() / m;
                within += c
                    .members
                    .iter()
                    .map(|&i| (features[i][d] - cmean).powi(2))
                    .sum::<f64>();
            }
        }
        if total <= 0.0 {
            0.0
        } else {
            (1.0 - within / total).clamp(0.0, 1.0)
        }
    }
}

/// Run the adaptive partition over one feature vector per UE.
///
/// All vectors must share the same dimension; non-finite feature values are
/// clamped to 0 (they arise from UEs with no observations and belong with
/// the least-active UEs).
///
/// ```
/// use cn_cluster::{cluster, ClusteringParams};
/// let features = vec![
///     vec![1.0, 1.0], vec![2.0, 2.0],      // a quiet cohort
///     vec![120.0, 80.0], vec![118.0, 82.0], // a busy cohort
/// ];
/// let params = ClusteringParams { theta_f: 5.0, theta_n: 1, ..Default::default() };
/// let c = cluster(&features, &params);
/// assert_eq!(c.assignments[0], c.assignments[1]);
/// assert_eq!(c.assignments[2], c.assignments[3]);
/// assert_ne!(c.assignments[0], c.assignments[2]);
/// ```
///
/// # Panics
/// Panics if feature vectors have inconsistent dimensions.
pub fn cluster(features: &[Vec<f64>], params: &ClusteringParams) -> Clustering {
    if features.is_empty() {
        return Clustering {
            assignments: Vec::new(),
            clusters: Vec::new(),
        };
    }
    let dim = features[0].len();
    assert!(
        features.iter().all(|f| f.len() == dim),
        "inconsistent feature dimensions"
    );
    let sane: Vec<Vec<f64>> = features
        .iter()
        .map(|f| {
            f.iter()
                .map(|&x| if x.is_finite() { x } else { 0.0 })
                .collect()
        })
        .collect();

    let mut clusters: Vec<ClusterInfo> = Vec::new();
    let all: Vec<usize> = (0..sane.len()).collect();
    let root_box = bounding_box(&sane, &all);
    split_recursive(&sane, all, root_box, params, 0, &mut clusters);

    let mut assignments = vec![ClusterId(0); sane.len()];
    for c in &clusters {
        for &m in &c.members {
            assignments[m] = c.id;
        }
    }
    Clustering {
        assignments,
        clusters,
    }
}

/// (lo, hi) per dimension over the member values.
fn bounding_box(features: &[Vec<f64>], members: &[usize]) -> (Vec<f64>, Vec<f64>) {
    let dim = features[members[0]].len();
    let mut lo = vec![f64::INFINITY; dim];
    let mut hi = vec![f64::NEG_INFINITY; dim];
    for &m in members {
        for d in 0..dim {
            lo[d] = lo[d].min(features[m][d]);
            hi[d] = hi[d].max(features[m][d]);
        }
    }
    (lo, hi)
}

fn split_recursive(
    features: &[Vec<f64>],
    members: Vec<usize>,
    node_box: (Vec<f64>, Vec<f64>),
    params: &ClusteringParams,
    depth: usize,
    out: &mut Vec<ClusterInfo>,
) {
    let (value_lo, value_hi) = bounding_box(features, &members);
    let dim = value_lo.len();

    // Termination: similar members, small cluster, or depth guard.
    let similar = (0..dim).all(|d| value_hi[d] - value_lo[d] < params.theta_f);
    if similar || members.len() < params.theta_n || depth >= params.max_depth {
        out.push(ClusterInfo {
            id: ClusterId(out.len() as u32),
            members,
            feature_min: value_lo,
            feature_max: value_hi,
        });
        return;
    }

    // Choose the dimensions to halve: the (≤ max_split_dims) with the
    // largest member value ranges among those still dissimilar.
    let mut ranges: Vec<(usize, f64)> = (0..dim)
        .map(|d| (d, value_hi[d] - value_lo[d]))
        .filter(|&(_, r)| r >= params.theta_f)
        .collect();
    ranges.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite ranges"));
    let split_dims: Vec<usize> = ranges
        .iter()
        .take(params.max_split_dims.max(1))
        .map(|&(d, _)| d)
        .collect();

    let (box_lo, box_hi) = node_box;
    // Midpoints of the *member value* range, not the node box: this keeps
    // every split effective even when members occupy a corner of the box.
    let mids: Vec<f64> = split_dims
        .iter()
        .map(|&d| (value_lo[d] + value_hi[d]) / 2.0)
        .collect();

    // Partition members into 2^k children by side-of-midpoint per split dim.
    let n_children = 1usize << split_dims.len();
    let mut child_members: Vec<Vec<usize>> = vec![Vec::new(); n_children];
    for m in members {
        let mut idx = 0usize;
        for (bit, (&d, &mid)) in split_dims.iter().zip(mids.iter()).enumerate() {
            if features[m][d] > mid {
                idx |= 1 << bit;
            }
        }
        child_members[idx].push(m);
    }

    for (idx, child) in child_members.into_iter().enumerate() {
        if child.is_empty() {
            continue;
        }
        let mut c_lo = box_lo.clone();
        let mut c_hi = box_hi.clone();
        for (bit, (&d, &mid)) in split_dims.iter().zip(mids.iter()).enumerate() {
            if idx & (1 << bit) == 0 {
                c_hi[d] = mid;
            } else {
                c_lo[d] = mid;
            }
        }
        split_recursive(features, child, (c_lo, c_hi), params, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(theta_f: f64, theta_n: usize) -> ClusteringParams {
        ClusteringParams {
            theta_f,
            theta_n,
            ..ClusteringParams::default()
        }
    }

    #[test]
    fn empty_input_is_empty_clustering() {
        let c = cluster(&[], &ClusteringParams::default());
        assert_eq!(c.num_clusters(), 0);
        assert!(c.assignments.is_empty());
    }

    #[test]
    fn similar_ues_form_one_cluster() {
        let features = vec![vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 1.5]];
        let c = cluster(&features, &params(5.0, 1));
        assert_eq!(c.num_clusters(), 1);
        assert_eq!(c.clusters[0].len(), 3);
    }

    #[test]
    fn dissimilar_groups_separate() {
        // Two well-separated blobs in 2-D.
        let mut features = Vec::new();
        for i in 0..20 {
            features.push(vec![i as f64 * 0.1, 0.0]); // near origin
        }
        for i in 0..20 {
            features.push(vec![100.0 + i as f64 * 0.1, 100.0]); // far corner
        }
        let c = cluster(&features, &params(5.0, 1));
        assert!(c.num_clusters() >= 2);
        // The two blobs never share a cluster.
        let a = c.assignments[0];
        let b = c.assignments[20];
        assert_ne!(a, b);
        // Every final cluster satisfies a stop criterion.
        for info in &c.clusters {
            let similar = info
                .feature_min
                .iter()
                .zip(&info.feature_max)
                .all(|(lo, hi)| hi - lo < 5.0);
            assert!(similar || info.is_empty(), "cluster {:?}", info.id);
        }
    }

    #[test]
    fn theta_n_stops_splitting() {
        // Wildly dissimilar but below the size threshold: stays together.
        let features = vec![vec![0.0, 0.0], vec![1000.0, 1000.0]];
        let c = cluster(&features, &params(5.0, 10));
        assert_eq!(c.num_clusters(), 1);
    }

    #[test]
    fn partition_is_total_and_disjoint() {
        let features: Vec<Vec<f64>> = (0..500)
            .map(|i| {
                vec![
                    (i % 97) as f64,
                    (i % 31) as f64,
                    (i % 7) as f64,
                    (i % 13) as f64,
                ]
            })
            .collect();
        let c = cluster(&features, &params(5.0, 20));
        assert_eq!(c.assignments.len(), 500);
        let total: usize = c.clusters.iter().map(ClusterInfo::len).sum();
        assert_eq!(total, 500);
        // Disjoint: each index appears exactly once.
        let mut seen = vec![false; 500];
        for info in &c.clusters {
            for &m in &info.members {
                assert!(!seen[m], "index {m} in two clusters");
                seen[m] = true;
            }
        }
        // Assignments agree with membership lists.
        for info in &c.clusters {
            for &m in &info.members {
                assert_eq!(c.assignments[m], info.id);
            }
        }
    }

    #[test]
    fn non_finite_features_clamped() {
        let features = vec![vec![f64::NAN, 1.0], vec![1.0, f64::INFINITY]];
        let c = cluster(&features, &params(5.0, 1));
        assert_eq!(c.assignments.len(), 2);
        for info in &c.clusters {
            assert!(info.feature_min.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn identical_points_terminate() {
        // 3000 identical points exceed θ_n but are trivially similar.
        let features = vec![vec![7.0; 4]; 3_000];
        let c = cluster(&features, &params(5.0, 1_000));
        assert_eq!(c.num_clusters(), 1);
        assert_eq!(c.clusters[0].len(), 3_000);
    }

    #[test]
    fn dispersion_reduction_behaves() {
        // Two tight blobs: clustering removes nearly all variance.
        let mut features = Vec::new();
        for i in 0..50 {
            features.push(vec![(i % 3) as f64, 0.0]);
            features.push(vec![100.0 + (i % 3) as f64, 100.0]);
        }
        let c = cluster(&features, &params(5.0, 1));
        let score = c.dispersion_reduction(&features);
        assert!(score > 0.95, "score {score}");
        // One cluster: zero reduction.
        let single = cluster(&features, &params(1e9, 1));
        assert!(single.dispersion_reduction(&features) < 1e-9);
    }

    #[test]
    fn shares_sum_to_one() {
        let features: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, (100 - i) as f64]).collect();
        let c = cluster(&features, &params(5.0, 10));
        let sum: f64 = c.shares().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skewed_heavy_tail_gets_many_clusters() {
        // Heavy-tailed activity: most UEs near zero, a few very large.
        let features: Vec<Vec<f64>> = (0..2_000)
            .map(|i| {
                let x = if i % 100 == 0 {
                    (i as f64) * 3.0
                } else {
                    (i % 10) as f64
                };
                vec![x, x / 2.0]
            })
            .collect();
        let c = cluster(&features, &params(5.0, 50));
        assert!(c.num_clusters() > 4, "got {}", c.num_clusters());
    }
}
