//! Adaptive quadtree clustering of UEs (§5.3 of the paper).
//!
//! Control-plane traffic is highly diverse and skewed across UEs, so a
//! single model per (hour, device-type) fails, while one model per UE has
//! too little data. The paper's answer is an *adaptive clustering scheme*:
//! recursively partition the UE feature space until every cluster either
//! (a) contains UEs whose features all lie within a similarity threshold
//! `θ_f` of each other, or (b) is smaller than a size threshold `θ_n`.
//! Each recursion step cuts the current feature box into equal-sized
//! sub-boxes — a quadtree when two dimensions are cut at a time, which is
//! the paper's configuration (two features per dominant event type).
//!
//! This crate is purely geometric: callers supply one feature vector per UE
//! (see [`feature`] for the paper's feature definitions; extraction from
//! traces lives in `cn-fit`), and receive a [`Clustering`] assigning every
//! UE to exactly one cluster.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod feature;
pub mod quadtree;

pub use feature::{FeatureSpec, PAPER_FEATURES};
pub use quadtree::{cluster, ClusterId, ClusterInfo, Clustering, ClusteringParams};
