//! The paper's UE-similarity features.
//!
//! §5.3: similarity is quantified on the two dominant event types,
//! `SRV_REQ` and `S1_CONN_REL` (84.1%–93.0% of all control events), with
//! two features per event type:
//!
//! 1. the number of control events of that type in the hour, and
//! 2. the standard deviation of the sojourn time in the associated UE
//!    state (`CONNECTED` for `SRV_REQ`, `IDLE` for `S1_CONN_REL`).
//!
//! Extraction from a trace (which requires state-machine replay) is done by
//! `cn-fit::pipeline`; this module only fixes the feature order and names
//! so clustering output is interpretable everywhere.

use serde::{Deserialize, Serialize};

/// Description of one clustering feature dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureSpec {
    /// Human-readable name.
    pub name: &'static str,
    /// Unit of the raw value.
    pub unit: &'static str,
}

/// The paper's four feature dimensions, in canonical order.
pub const PAPER_FEATURES: [FeatureSpec; 4] = [
    FeatureSpec {
        name: "srv_req_count",
        unit: "events/hour",
    },
    FeatureSpec {
        name: "connected_sojourn_std",
        unit: "seconds",
    },
    FeatureSpec {
        name: "s1_conn_rel_count",
        unit: "events/hour",
    },
    FeatureSpec {
        name: "idle_sojourn_std",
        unit: "seconds",
    },
];

/// Index of the `SRV_REQ` count feature.
pub const F_SRV_REQ_COUNT: usize = 0;
/// Index of the CONNECTED sojourn std-dev feature.
pub const F_CONN_STD: usize = 1;
/// Index of the `S1_CONN_REL` count feature.
pub const F_S1_REL_COUNT: usize = 2;
/// Index of the IDLE sojourn std-dev feature.
pub const F_IDLE_STD: usize = 3;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_features_with_unique_names() {
        let mut names: Vec<&str> = PAPER_FEATURES.iter().map(|f| f.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4);
        assert_eq!(PAPER_FEATURES[F_SRV_REQ_COUNT].name, "srv_req_count");
        assert_eq!(PAPER_FEATURES[F_IDLE_STD].name, "idle_sojourn_std");
    }
}
