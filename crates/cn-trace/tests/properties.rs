//! Property-based tests for the trace substrate.

use cn_trace::io;
use cn_trace::{DeviceType, EventType, Timestamp, Trace, TraceRecord, UeId};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (0u64..1_000_000, 0u32..64, 0u8..3, 0u8..6).prop_map(|(t, ue, d, e)| {
        TraceRecord::new(
            Timestamp::from_millis(t),
            UeId(ue),
            DeviceType::from_code(d).unwrap(),
            EventType::from_code(e).unwrap(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn from_records_is_sorted(recs in prop::collection::vec(arb_record(), 0..200)) {
        let t = Trace::from_records(recs);
        let r = t.records();
        prop_assert!(r.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn merge_equals_concat_sort(
        a in prop::collection::vec(arb_record(), 0..100),
        b in prop::collection::vec(arb_record(), 0..100),
        c in prop::collection::vec(arb_record(), 0..100),
    ) {
        let ta = Trace::from_records(a.clone());
        let tb = Trace::from_records(b.clone());
        let tc = Trace::from_records(c.clone());
        let merged = Trace::merge(vec![ta, tb, tc]);
        let mut all = a;
        all.extend(b);
        all.extend(c);
        let expected = Trace::from_records(all);
        prop_assert_eq!(merged.len(), expected.len());
        // Same multiset in sorted order.
        prop_assert_eq!(merged.records(), expected.records());
    }

    #[test]
    fn loser_tree_merge_equals_sort(
        runs in prop::collection::vec(prop::collection::vec(0u64..200, 0..25), 0..10),
    ) {
        // Randomized pre-sorted runs — including empty and single-record
        // runs — merged by the loser tree must equal a global sort.
        let sorted: Vec<Vec<u64>> = runs
            .into_iter()
            .map(|mut r| {
                r.sort_unstable();
                r
            })
            .collect();
        let merged = cn_trace::merge::merge_sorted(&sorted);
        let mut expect: Vec<u64> = sorted.iter().flatten().copied().collect();
        expect.sort_unstable();
        prop_assert_eq!(merged, expect);
    }

    #[test]
    fn merge_matrix_over_input_counts(
        recs in prop::collection::vec(arb_record(), 0..120),
        k in 1usize..6,
    ) {
        // Round-robin the records into k sorted traces; every merge arity
        // (0/1 fast path, two-pointer, loser tree) must agree with one
        // global sort. Tie the device to the UE so records that compare
        // equal (ordering ignores device) are fully identical — otherwise
        // two valid sorted orders could differ on the device column.
        let recs: Vec<TraceRecord> = recs
            .iter()
            .map(|r| {
                let device = DeviceType::from_code((r.ue.get() % 3) as u8).unwrap();
                TraceRecord::new(r.t, r.ue, device, r.event)
            })
            .collect();
        let mut parts: Vec<Vec<TraceRecord>> = vec![Vec::new(); k];
        for (i, r) in recs.iter().enumerate() {
            parts[i % k].push(*r);
        }
        let traces: Vec<Trace> = parts.into_iter().map(Trace::from_records).collect();
        let merged = Trace::merge(traces);
        let expected = Trace::from_records(recs);
        prop_assert_eq!(merged.records(), expected.records());
    }

    #[test]
    fn binary_round_trip(recs in prop::collection::vec(arb_record(), 0..200)) {
        let t = Trace::from_records(recs);
        let bin = io::to_binary(&t);
        let back = io::from_binary(&bin).unwrap();
        prop_assert_eq!(t, back);
    }

    #[test]
    fn csv_round_trip(recs in prop::collection::vec(arb_record(), 0..100)) {
        let t = Trace::from_records(recs);
        let mut buf = Vec::new();
        io::write_csv(&t, &mut buf).unwrap();
        let back = io::read_csv(&buf[..]).unwrap();
        prop_assert_eq!(t, back);
    }

    #[test]
    fn per_ue_partitions_all_records(recs in prop::collection::vec(arb_record(), 0..200)) {
        let t = Trace::from_records(recs);
        let view = t.per_ue();
        let total: usize = view.iter().map(|(_, evs)| evs.len()).sum();
        prop_assert_eq!(total, t.len());
        for (ue, evs) in view.iter() {
            prop_assert!(evs.iter().all(|r| r.ue == ue));
            prop_assert!(evs.windows(2).all(|w| w[0].t <= w[1].t));
        }
    }

    #[test]
    fn window_contains_only_range(
        recs in prop::collection::vec(arb_record(), 0..200),
        lo in 0u64..500_000,
        width in 0u64..500_000,
    ) {
        let t = Trace::from_records(recs);
        let start = Timestamp::from_millis(lo);
        let end = Timestamp::from_millis(lo + width);
        let w = t.window(start, end);
        prop_assert!(w.iter().all(|r| r.t >= start && r.t < end));
        let expected = t.iter().filter(|r| r.t >= start && r.t < end).count();
        prop_assert_eq!(w.len(), expected);
    }
}
