//! UE relabeling: anonymization and population compaction.
//!
//! The paper's dataset section and ethics appendix stress that carrier
//! traces are only usable with user identities anonymized. When importing
//! external traces (or exporting generated ones into shared environments),
//! relabeling maps arbitrary UE identifiers onto a dense, order-free id
//! space while preserving everything the models need (timing, event types,
//! device types, per-UE grouping).

use crate::record::{TraceRecord, UeId};
use crate::trace::Trace;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// A UE-id mapping produced by a relabeling pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RelabelMap {
    forward: HashMap<UeId, UeId>,
}

impl RelabelMap {
    /// The new id of `ue`, if it appeared in the relabeled trace.
    pub fn get(&self, ue: UeId) -> Option<UeId> {
        self.forward.get(&ue).copied()
    }

    /// Number of distinct UEs mapped.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// True when no UEs were mapped.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }
}

/// Relabel UEs onto the dense range `0..n`, in order of first appearance.
///
/// Deterministic and reversible via the returned map; preserves per-UE
/// event sequences exactly.
pub fn compact_ids(trace: &Trace) -> (Trace, RelabelMap) {
    let mut map = RelabelMap::default();
    let mut next = 0u32;
    let records: Vec<TraceRecord> = trace
        .iter()
        .map(|r| {
            let new = *map.forward.entry(r.ue).or_insert_with(|| {
                let id = UeId(next);
                next += 1;
                id
            });
            TraceRecord::new(r.t, new, r.device, r.event)
        })
        .collect();
    (Trace::from_records(records), map)
}

/// Relabel UEs onto a *pseudorandom permutation* of `0..n`, seeded — the
/// anonymizing variant: first-appearance order (which leaks arrival order)
/// is destroyed, but the mapping is reproducible from the seed.
pub fn pseudonymize(trace: &Trace, seed: u64) -> (Trace, RelabelMap) {
    let ues = trace.ues();
    let mut slots: Vec<u32> = (0..ues.len() as u32).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    slots.shuffle(&mut rng);
    let mut map = RelabelMap::default();
    for (old, slot) in ues.iter().zip(slots) {
        map.forward.insert(*old, UeId(slot));
    }
    let records: Vec<TraceRecord> = trace
        .iter()
        .map(|r| TraceRecord::new(r.t, map.forward[&r.ue], r.device, r.event))
        .collect();
    (Trace::from_records(records), map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceType;
    use crate::event::EventType;
    use crate::time::Timestamp;

    fn rec(t: u64, ue: u32, e: EventType) -> TraceRecord {
        TraceRecord::new(Timestamp::from_millis(t), UeId(ue), DeviceType::Phone, e)
    }

    fn sample() -> Trace {
        Trace::from_records(vec![
            rec(10, 900, EventType::ServiceRequest),
            rec(20, 17, EventType::Attach),
            rec(30, 900, EventType::S1ConnRelease),
            rec(40, 4_000_000, EventType::Tau),
        ])
    }

    #[test]
    fn compact_assigns_first_appearance_order() {
        let (out, map) = compact_ids(&sample());
        assert_eq!(map.len(), 3);
        assert_eq!(map.get(UeId(900)), Some(UeId(0)));
        assert_eq!(map.get(UeId(17)), Some(UeId(1)));
        assert_eq!(map.get(UeId(4_000_000)), Some(UeId(2)));
        assert_eq!(map.get(UeId(5)), None);
        // Per-UE sequences preserved.
        let per = out.per_ue();
        let ue0 = per.get(UeId(0)).unwrap();
        assert_eq!(ue0.len(), 2);
        assert_eq!(ue0[0].event, EventType::ServiceRequest);
        assert_eq!(ue0[1].event, EventType::S1ConnRelease);
    }

    #[test]
    fn pseudonymize_is_a_dense_permutation() {
        let (out, map) = pseudonymize(&sample(), 7);
        assert_eq!(map.len(), 3);
        let mut new_ids: Vec<u32> = out.ues().iter().map(|u| u.get()).collect();
        new_ids.sort_unstable();
        assert_eq!(new_ids, vec![0, 1, 2]);
        // Deterministic per seed, different across seeds (usually).
        let (again, _) = pseudonymize(&sample(), 7);
        assert_eq!(out, again);
    }

    #[test]
    fn timing_and_events_untouched() {
        let original = sample();
        for relabeled in [compact_ids(&original).0, pseudonymize(&original, 3).0] {
            let a: Vec<(u64, EventType)> = original
                .iter()
                .map(|r| (r.t.as_millis(), r.event))
                .collect();
            let b: Vec<(u64, EventType)> = relabeled
                .iter()
                .map(|r| (r.t.as_millis(), r.event))
                .collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn empty_trace() {
        let (out, map) = compact_ids(&Trace::new());
        assert!(out.is_empty());
        assert!(map.is_empty());
    }
}
