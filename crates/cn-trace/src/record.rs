//! Individual trace records.
//!
//! Every synthesized or observed event is labeled with its originating UE
//! (design goal 2, "event-owner labeling"): MCN event processing is
//! UE-oriented, so an unlabeled aggregate event stream cannot drive the
//! per-UE state kept by core-network functions.

use crate::device::DeviceType;
use crate::event::EventType;
use crate::time::Timestamp;
use serde::{Deserialize, Serialize};

/// Identifier of a single UE within a trace (dense, 0-based).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct UeId(pub u32);

impl UeId {
    /// Raw index value.
    pub const fn get(self) -> u32 {
        self.0
    }

    /// Index usable for per-UE vectors.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for UeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ue{}", self.0)
    }
}

/// One control-plane event: who, what, when.
///
/// Records order by `(time, ue, event)` so that a sorted trace has a unique,
/// deterministic layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Event timestamp (millisecond granularity).
    pub t: Timestamp,
    /// Originating UE.
    pub ue: UeId,
    /// Device type of the originating UE.
    pub device: DeviceType,
    /// The control-plane event type.
    pub event: EventType,
}

impl TraceRecord {
    /// Construct a record.
    pub fn new(t: Timestamp, ue: UeId, device: DeviceType, event: EventType) -> Self {
        TraceRecord {
            t,
            ue,
            device,
            event,
        }
    }

    /// Packed merge key: `t_ms << 32 | ue`, always below
    /// [`crate::merge::EXHAUSTED_KEY`].
    ///
    /// Plain integer order on these keys embeds the full record [`Ord`]
    /// (`(t, ue, event)`) exactly, *provided no two compared records share
    /// `(t, ue)`* — the event tiebreaker is dropped. Per-UE generator
    /// streams guarantee this: each UE lives in exactly one run and its
    /// timestamps strictly increase, so `(t, ue)` is globally unique. The
    /// compact [`crate::merge::KeyLoserTree`] merges on these keys.
    #[inline]
    pub fn merge_key(&self) -> u128 {
        (u128::from(self.t.as_millis()) << 32) | u128::from(self.ue.get())
    }
}

impl PartialOrd for TraceRecord {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TraceRecord {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.t, self.ue, self.event as u8).cmp(&(other.t, other.ue, other.event as u8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64, ue: u32, e: EventType) -> TraceRecord {
        TraceRecord::new(Timestamp::from_millis(t), UeId(ue), DeviceType::Phone, e)
    }

    #[test]
    fn ordering_is_time_then_ue_then_event() {
        let a = rec(10, 5, EventType::Tau);
        let b = rec(20, 1, EventType::Attach);
        let c = rec(20, 2, EventType::Attach);
        let d = rec(20, 2, EventType::Handover);
        let mut v = vec![d, c, b, a];
        v.sort();
        assert_eq!(v, vec![a, b, c, d]);
    }

    #[test]
    fn ue_display() {
        assert_eq!(UeId(42).to_string(), "ue42");
    }
}
