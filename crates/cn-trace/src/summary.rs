//! Descriptive summaries of a trace.
//!
//! Quick answers to "what is in this trace?": span, per-device and
//! per-event volumes, rates, and per-UE activity distribution — the
//! numbers a paper's "Dataset" paragraph reports (§4 reports 37,325 UEs,
//! 196,827,464 events, one week, millisecond granularity).

use crate::device::DeviceType;
use crate::event::EventType;
use crate::trace::Trace;
use serde::{Deserialize, Serialize};

/// Summary statistics of a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Total events.
    pub events: u64,
    /// Distinct UEs.
    pub ues: u64,
    /// Span in seconds (0 when fewer than 2 events).
    pub span_secs: f64,
    /// Mean events per second over the span (0 for degenerate spans).
    pub events_per_sec: f64,
    /// Events per device type, indexed by [`DeviceType::code`].
    pub by_device: [u64; 3],
    /// Events per event type, indexed by [`EventType::code`].
    pub by_event: [u64; 6],
    /// Events of the busiest UE.
    pub max_events_per_ue: u64,
    /// Median events per active UE.
    pub median_events_per_ue: u64,
}

impl TraceSummary {
    /// Compute the summary of a trace.
    pub fn of(trace: &Trace) -> TraceSummary {
        let mut by_device = [0u64; 3];
        let mut by_event = [0u64; 6];
        let mut per_ue: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        for r in trace.iter() {
            by_device[r.device.code() as usize] += 1;
            by_event[r.event.code() as usize] += 1;
            *per_ue.entry(r.ue.get()).or_insert(0) += 1;
        }
        let span_secs = match (trace.start(), trace.end()) {
            (Some(s), Some(e)) if e > s => e.since(s) as f64 / 1_000.0,
            _ => 0.0,
        };
        let mut counts: Vec<u64> = per_ue.values().copied().collect();
        counts.sort_unstable();
        TraceSummary {
            events: trace.len() as u64,
            ues: counts.len() as u64,
            span_secs,
            events_per_sec: if span_secs > 0.0 {
                trace.len() as f64 / span_secs
            } else {
                0.0
            },
            by_device,
            by_event,
            max_events_per_ue: counts.last().copied().unwrap_or(0),
            median_events_per_ue: counts.get(counts.len() / 2).copied().unwrap_or(0),
        }
    }

    /// Share of events of one device type.
    pub fn device_share(&self, device: DeviceType) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.by_device[device.code() as usize] as f64 / self.events as f64
        }
    }

    /// Share of events of one event type.
    pub fn event_share(&self, event: EventType) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.by_event[event.code() as usize] as f64 / self.events as f64
        }
    }
}

impl std::fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} events from {} UEs over {:.1} h ({:.1} ev/s)",
            self.events,
            self.ues,
            self.span_secs / 3_600.0,
            self.events_per_sec
        )?;
        for d in DeviceType::ALL {
            write!(f, "  {}: {:.1}%", d.abbrev(), self.device_share(d) * 100.0)?;
        }
        writeln!(f)?;
        for e in EventType::ALL {
            write!(f, "  {}: {:.1}%", e.mnemonic(), self.event_share(e) * 100.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{TraceRecord, UeId};
    use crate::time::Timestamp;

    fn rec(t: u64, ue: u32, d: DeviceType, e: EventType) -> TraceRecord {
        TraceRecord::new(Timestamp::from_millis(t), UeId(ue), d, e)
    }

    #[test]
    fn empty_summary() {
        let s = TraceSummary::of(&Trace::new());
        assert_eq!(s.events, 0);
        assert_eq!(s.ues, 0);
        assert_eq!(s.events_per_sec, 0.0);
        assert_eq!(s.device_share(DeviceType::Phone), 0.0);
    }

    #[test]
    fn counts_and_shares() {
        let t = Trace::from_records(vec![
            rec(0, 0, DeviceType::Phone, EventType::ServiceRequest),
            rec(1_000, 0, DeviceType::Phone, EventType::S1ConnRelease),
            rec(2_000, 1, DeviceType::Tablet, EventType::Tau),
            rec(10_000, 0, DeviceType::Phone, EventType::ServiceRequest),
        ]);
        let s = TraceSummary::of(&t);
        assert_eq!(s.events, 4);
        assert_eq!(s.ues, 2);
        assert!((s.span_secs - 10.0).abs() < 1e-9);
        assert!((s.events_per_sec - 0.4).abs() < 1e-9);
        assert!((s.device_share(DeviceType::Phone) - 0.75).abs() < 1e-12);
        assert!((s.event_share(EventType::ServiceRequest) - 0.5).abs() < 1e-12);
        assert_eq!(s.max_events_per_ue, 3);
        assert_eq!(s.median_events_per_ue, 3);
        let text = s.to_string();
        assert!(text.contains("4 events from 2 UEs"));
    }
}
