//! The sorted trace container and its partitioning/merging operations.
//!
//! Traces are flat vectors of [`TraceRecord`]s sorted by time. The modeling
//! pipeline repeatedly needs per-UE views (to replay state machines),
//! per-hour-of-day slices (models are per 1-hour interval, pooled across
//! days, §4.1.1), per-device slices, and k-way merging of independently
//! generated per-UE streams into one population trace.

use crate::device::DeviceType;
use crate::merge::LoserTree;
use crate::record::{TraceRecord, UeId};
use crate::time::{HourOfDay, Timestamp};

/// A time-sorted sequence of control-plane events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace {
            records: Vec::new(),
        }
    }

    /// An empty trace with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Trace {
            records: Vec::with_capacity(cap),
        }
    }

    /// Build a trace from records in any order; they are sorted on entry.
    pub fn from_records(mut records: Vec<TraceRecord>) -> Self {
        records.sort_unstable();
        Trace { records }
    }

    /// Append a record, keeping the container sorted.
    ///
    /// Appending in non-decreasing time order is O(1); out-of-order pushes
    /// fall back to a binary-search insert.
    pub fn push(&mut self, rec: TraceRecord) {
        if self.records.last().is_some_and(|last| rec < *last) {
            let pos = self.records.partition_point(|r| *r <= rec);
            self.records.insert(pos, rec);
        } else {
            self.records.push(rec);
        }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The sorted records.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Iterate over the sorted records.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceRecord> {
        self.records.iter()
    }

    /// Timestamp of the first event, if any.
    pub fn start(&self) -> Option<Timestamp> {
        self.records.first().map(|r| r.t)
    }

    /// Timestamp of the last event, if any.
    pub fn end(&self) -> Option<Timestamp> {
        self.records.last().map(|r| r.t)
    }

    /// Distinct UEs present in the trace, sorted by id.
    pub fn ues(&self) -> Vec<UeId> {
        let mut ids: Vec<UeId> = self.records.iter().map(|r| r.ue).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Device type of a UE, from its first record (a well-formed trace has a
    /// single device type per UE; see [`crate::validate`]).
    pub fn device_of(&self, ue: UeId) -> Option<DeviceType> {
        self.records.iter().find(|r| r.ue == ue).map(|r| r.device)
    }

    /// Events that fall within the given hour-of-day, on any day.
    pub fn filter_hour_of_day(&self, hour: HourOfDay) -> Trace {
        Trace {
            records: self
                .records
                .iter()
                .filter(|r| r.t.hour_of_day() == hour)
                .copied()
                .collect(),
        }
    }

    /// Events from UEs of the given device type.
    pub fn filter_device(&self, device: DeviceType) -> Trace {
        Trace {
            records: self
                .records
                .iter()
                .filter(|r| r.device == device)
                .copied()
                .collect(),
        }
    }

    /// Events with `start <= t < end`.
    pub fn window(&self, start: Timestamp, end: Timestamp) -> Trace {
        let lo = self.records.partition_point(|r| r.t < start);
        let hi = self.records.partition_point(|r| r.t < end);
        Trace {
            records: self.records[lo..hi].to_vec(),
        }
    }

    /// Group records by UE, preserving time order within each UE.
    pub fn per_ue(&self) -> PerUeView {
        let mut by_ue: Vec<TraceRecord> = self.records.clone();
        // Stable sort by UE keeps the existing time order within each UE.
        by_ue.sort_by_key(|r| r.ue);
        let mut spans: Vec<(UeId, std::ops::Range<usize>)> = Vec::new();
        let mut i = 0;
        while i < by_ue.len() {
            let ue = by_ue[i].ue;
            let start = i;
            while i < by_ue.len() && by_ue[i].ue == ue {
                i += 1;
            }
            spans.push((ue, start..i));
        }
        PerUeView {
            records: by_ue,
            spans,
        }
    }

    /// Merge any number of sorted traces into one sorted trace (k-way merge).
    ///
    /// Used to combine independently generated per-UE event streams into the
    /// population-level trace (§7). Zero or one non-empty input returns
    /// without any merge machinery, two inputs take a straight two-pointer
    /// merge, and three or more run through a [`LoserTree`] (one replace-top
    /// pass — ⌈log₂k⌉ comparisons — per emitted record instead of a heap
    /// pop *and* push). Ties between traces resolve toward the earlier
    /// input, so the merge is stable and deterministic.
    pub fn merge(traces: Vec<Trace>) -> Trace {
        for t in &traces {
            debug_assert!(
                t.records.windows(2).all(|w| w[0] <= w[1]),
                "Trace::merge input must be sorted"
            );
        }
        let mut traces: Vec<Trace> = traces.into_iter().filter(|t| !t.is_empty()).collect();
        match traces.len() {
            0 => Trace::new(),
            1 => traces.pop().expect("one trace"),
            2 => {
                let b = traces.pop().expect("two traces");
                let a = traces.pop().expect("two traces");
                Trace::merge_two(a, b)
            }
            _ => {
                let total: usize = traces.iter().map(Trace::len).sum();
                let mut out = Vec::with_capacity(total);
                let mut cursors = vec![1usize; traces.len()];
                let mut tree =
                    LoserTree::new(traces.iter().map(|t| t.records.first().copied()).collect());
                while let Some(w) = tree.winner() {
                    let next = traces[w].records.get(cursors[w]).copied();
                    cursors[w] += 1;
                    out.push(tree.pop_and_replace(next).expect("winner has a head"));
                }
                Trace { records: out }
            }
        }
    }

    /// Two-pointer merge of two sorted traces (ties prefer `a`).
    fn merge_two(a: Trace, b: Trace) -> Trace {
        let (ra, rb) = (a.records, b.records);
        let mut out = Vec::with_capacity(ra.len() + rb.len());
        let (mut i, mut j) = (0, 0);
        while i < ra.len() && j < rb.len() {
            if rb[j] < ra[i] {
                out.push(rb[j]);
                j += 1;
            } else {
                out.push(ra[i]);
                i += 1;
            }
        }
        out.extend_from_slice(&ra[i..]);
        out.extend_from_slice(&rb[j..]);
        Trace { records: out }
    }

    /// Consume the trace, returning the sorted record vector.
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.records
    }

    /// A copy of the trace with every timestamp shifted by `offset_ms`
    /// (saturating). Useful for splicing traces end to end (e.g. repeating
    /// a modeled day) while keeping them sorted.
    pub fn shifted(&self, offset_ms: i64) -> Trace {
        let records = self
            .records
            .iter()
            .map(|r| {
                let t = if offset_ms >= 0 {
                    r.t.saturating_add(offset_ms as u64)
                } else {
                    Timestamp::from_millis(r.t.as_millis().saturating_sub(offset_ms.unsigned_abs()))
                };
                TraceRecord::new(t, r.ue, r.device, r.event)
            })
            .collect();
        Trace { records }
    }

    /// Split the trace into two by UE: approximately `fraction` of the UEs
    /// (seeded pseudorandom choice) land in the first trace, the rest in
    /// the second. Every UE's events stay together — the split is the
    /// UE-level holdout used for honest model evaluation.
    pub fn partition_ues(&self, fraction: f64, seed: u64) -> (Trace, Trace) {
        use std::collections::HashMap;
        let fraction = fraction.clamp(0.0, 1.0);
        // Seeded per-UE coin via SplitMix64 — stable across trace layouts.
        let mut coin: HashMap<UeId, bool> = HashMap::new();
        let mut a = Vec::new();
        let mut b = Vec::new();
        for r in &self.records {
            let heads = *coin.entry(r.ue).or_insert_with(|| {
                let mut x = seed ^ (u64::from(r.ue.get()).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                x ^= x >> 30;
                x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x ^= x >> 27;
                (x as f64 / u64::MAX as f64) < fraction
            });
            if heads {
                a.push(*r);
            } else {
                b.push(*r);
            }
        }
        (Trace { records: a }, Trace { records: b })
    }
}

impl FromIterator<TraceRecord> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceRecord>>(iter: I) -> Self {
        Trace::from_records(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceRecord;
    type IntoIter = std::slice::Iter<'a, TraceRecord>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

/// Records of a trace grouped by UE (each group time-sorted).
#[derive(Debug, Clone)]
pub struct PerUeView {
    records: Vec<TraceRecord>,
    spans: Vec<(UeId, std::ops::Range<usize>)>,
}

impl PerUeView {
    /// Number of distinct UEs.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if no UEs are present.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Iterate `(ue, events-of-ue)` in UE-id order.
    pub fn iter(&self) -> impl Iterator<Item = (UeId, &[TraceRecord])> {
        self.spans
            .iter()
            .map(move |(ue, range)| (*ue, &self.records[range.clone()]))
    }

    /// Events of one UE, if present.
    pub fn get(&self, ue: UeId) -> Option<&[TraceRecord]> {
        let idx = self.spans.binary_search_by_key(&ue, |(u, _)| *u).ok()?;
        let (_, range) = &self.spans[idx];
        Some(&self.records[range.clone()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventType;
    use crate::time::MS_PER_HOUR;

    fn rec(t: u64, ue: u32, e: EventType) -> TraceRecord {
        TraceRecord::new(Timestamp::from_millis(t), UeId(ue), DeviceType::Phone, e)
    }

    #[test]
    fn from_records_sorts() {
        let t = Trace::from_records(vec![
            rec(30, 0, EventType::Tau),
            rec(10, 1, EventType::Attach),
            rec(20, 0, EventType::ServiceRequest),
        ]);
        let times: Vec<u64> = t.iter().map(|r| r.t.as_millis()).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn push_keeps_sorted_even_out_of_order() {
        let mut t = Trace::new();
        t.push(rec(20, 0, EventType::Attach));
        t.push(rec(10, 0, EventType::Attach));
        t.push(rec(15, 0, EventType::ServiceRequest));
        let times: Vec<u64> = t.iter().map(|r| r.t.as_millis()).collect();
        assert_eq!(times, vec![10, 15, 20]);
    }

    #[test]
    fn per_ue_groups_and_preserves_order() {
        let t = Trace::from_records(vec![
            rec(10, 2, EventType::Attach),
            rec(20, 1, EventType::Attach),
            rec(30, 2, EventType::ServiceRequest),
            rec(40, 1, EventType::Detach),
        ]);
        let view = t.per_ue();
        assert_eq!(view.len(), 2);
        let ue1 = view.get(UeId(1)).unwrap();
        assert_eq!(ue1.len(), 2);
        assert_eq!(ue1[0].event, EventType::Attach);
        assert_eq!(ue1[1].event, EventType::Detach);
        assert!(view.get(UeId(9)).is_none());
    }

    #[test]
    fn merge_interleaves() {
        let a = Trace::from_records(vec![
            rec(10, 0, EventType::Attach),
            rec(30, 0, EventType::Tau),
        ]);
        let b = Trace::from_records(vec![
            rec(20, 1, EventType::Attach),
            rec(40, 1, EventType::Tau),
        ]);
        let m = Trace::merge(vec![a, b]);
        let times: Vec<u64> = m.iter().map(|r| r.t.as_millis()).collect();
        assert_eq!(times, vec![10, 20, 30, 40]);
    }

    #[test]
    fn merge_of_nothing_is_empty() {
        assert!(Trace::merge(vec![]).is_empty());
        assert!(Trace::merge(vec![Trace::new(), Trace::new()]).is_empty());
    }

    #[test]
    fn merge_of_one_is_identity() {
        let a = Trace::from_records(vec![
            rec(10, 0, EventType::Attach),
            rec(30, 0, EventType::Tau),
        ]);
        assert_eq!(Trace::merge(vec![a.clone()]), a);
        // Empty companions don't disturb the single-input fast path.
        assert_eq!(Trace::merge(vec![Trace::new(), a.clone(), Trace::new()]), a);
    }

    #[test]
    fn merge_two_handles_ties_and_tails() {
        let a = Trace::from_records(vec![
            rec(10, 0, EventType::Attach),
            rec(20, 0, EventType::Tau),
            rec(90, 0, EventType::Detach),
        ]);
        let b = Trace::from_records(vec![
            rec(10, 1, EventType::Attach),
            rec(20, 1, EventType::Tau),
        ]);
        let m = Trace::merge(vec![a.clone(), b.clone()]);
        assert_eq!(m.len(), 5);
        let mut expect: Vec<TraceRecord> = a.iter().chain(b.iter()).copied().collect();
        expect.sort_unstable();
        assert_eq!(m.records(), expect.as_slice());
    }

    #[test]
    fn many_way_merge_equals_global_sort() {
        // 7 runs (non-power-of-two) of interleaved times.
        let runs: Vec<Trace> = (0..7u32)
            .map(|i| {
                Trace::from_records(
                    (0..10u64)
                        .map(|j| rec(j * 7 + u64::from(i), i, EventType::Tau))
                        .collect(),
                )
            })
            .collect();
        let merged = Trace::merge(runs.clone());
        let mut expect: Vec<TraceRecord> = runs.iter().flat_map(|t| t.iter().copied()).collect();
        expect.sort_unstable();
        assert_eq!(merged.records(), expect.as_slice());
    }

    #[test]
    fn hour_filter() {
        let t = Trace::from_records(vec![
            rec(MS_PER_HOUR / 2, 0, EventType::Attach),         // 00h
            rec(MS_PER_HOUR + 5, 0, EventType::ServiceRequest), // 01h
            rec(25 * MS_PER_HOUR, 0, EventType::Tau),           // day 1, 01h
        ]);
        let h1 = t.filter_hour_of_day(HourOfDay(1));
        assert_eq!(h1.len(), 2);
        assert!(h1.iter().all(|r| r.t.hour_of_day() == HourOfDay(1)));
    }

    #[test]
    fn window_is_half_open() {
        let t = Trace::from_records(vec![
            rec(10, 0, EventType::Attach),
            rec(20, 0, EventType::ServiceRequest),
            rec(30, 0, EventType::Tau),
        ]);
        let w = t.window(Timestamp::from_millis(10), Timestamp::from_millis(30));
        assert_eq!(w.len(), 2);
        assert_eq!(w.start().unwrap().as_millis(), 10);
        assert_eq!(w.end().unwrap().as_millis(), 20);
    }

    #[test]
    fn shifting_preserves_order_and_gaps() {
        let t = Trace::from_records(vec![
            rec(100, 0, EventType::Attach),
            rec(500, 1, EventType::Tau),
        ]);
        let fwd = t.shifted(1_000);
        assert_eq!(fwd.start().unwrap().as_millis(), 1_100);
        assert_eq!(fwd.end().unwrap().as_millis(), 1_500);
        let back = fwd.shifted(-1_000);
        assert_eq!(back, t);
        // Negative shifts saturate at zero.
        let clamped = t.shifted(-200);
        assert_eq!(clamped.start().unwrap().as_millis(), 0);
    }

    #[test]
    fn partition_ues_is_a_ue_level_split() {
        let records: Vec<TraceRecord> = (0..200)
            .map(|i| rec(u64::from(i) * 10, i % 40, EventType::Tau))
            .collect();
        let t = Trace::from_records(records);
        let (a, b) = t.partition_ues(0.5, 7);
        assert_eq!(a.len() + b.len(), t.len());
        // No UE appears on both sides.
        let ues_a: std::collections::HashSet<_> = a.ues().into_iter().collect();
        for ue in b.ues() {
            assert!(!ues_a.contains(&ue), "{ue} on both sides");
        }
        // Deterministic.
        let (a2, _) = t.partition_ues(0.5, 7);
        assert_eq!(a, a2);
        // Extremes.
        let (all, none) = t.partition_ues(1.0, 3);
        assert_eq!(all.len(), t.len());
        assert!(none.is_empty());
    }

    #[test]
    fn ues_dedups() {
        let t = Trace::from_records(vec![
            rec(10, 3, EventType::Attach),
            rec(20, 1, EventType::Attach),
            rec(30, 3, EventType::Tau),
        ]);
        assert_eq!(t.ues(), vec![UeId(1), UeId(3)]);
    }
}
