//! Control-plane event and trace substrate.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: the six LTE control-plane event types of Table 1 of the paper
//! (*Modeling and Generating Control-Plane Traffic for Cellular Networks*,
//! IMC '23), device types, millisecond timestamps, the [`TraceRecord`]
//! event record, the sorted [`Trace`] container with k-way merging and
//! hour/device partitioning, and trace serialization (CSV, JSONL, and a
//! compact binary format).
//!
//! Design notes
//! ------------
//! * Events are small `Copy` values; a trace is a flat, time-sorted
//!   `Vec<TraceRecord>` — cache-friendly and trivially mappable to the
//!   on-disk binary format.
//! * All timestamps are in **milliseconds** (the paper's collection
//!   granularity) since an arbitrary epoch; hour-of-day arithmetic treats
//!   `t = 0` as midnight of day 0.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod device;
pub mod event;
pub mod io;
pub mod merge;
pub mod record;
pub mod relabel;
pub mod series;
pub mod summary;
pub mod time;
pub mod trace;
pub mod validate;

pub use block::{EncodedBlock, RECORD_BYTES};
pub use device::{DeviceType, PopulationMix};
pub use event::{EventCategory, EventType};
pub use merge::{KeyLoserTree, LoserTree, EXHAUSTED_KEY};
pub use record::{TraceRecord, UeId};
pub use summary::TraceSummary;
pub use time::{HourOfDay, Timestamp, MS_PER_DAY, MS_PER_HOUR, MS_PER_SEC};
pub use trace::{PerUeView, Trace};
pub use validate::{check_well_formed, WellFormedError};
