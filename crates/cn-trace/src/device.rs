//! Device types and UE population mixes.
//!
//! The paper studies three primary device types derived from the Type
//! Allocation Code of each UE's IMEI: phones, connected cars, and tablets
//! (§4). The sampled population was 23,388 phones, 9,308 connected cars and
//! 4,629 tablets.

use serde::{Deserialize, Serialize};

/// A primary device type, as classified by TAC in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum DeviceType {
    /// Smartphones ("P" in the paper's tables).
    Phone = 0,
    /// Connected cars ("CC").
    ConnectedCar = 1,
    /// Tablets ("T").
    Tablet = 2,
}

impl DeviceType {
    /// All device types, in the paper's table order.
    pub const ALL: [DeviceType; 3] = [
        DeviceType::Phone,
        DeviceType::ConnectedCar,
        DeviceType::Tablet,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            DeviceType::Phone => "Phones",
            DeviceType::ConnectedCar => "Connected Cars",
            DeviceType::Tablet => "Tablets",
        }
    }

    /// The paper's single/double-letter abbreviation (P / CC / T).
    pub fn abbrev(self) -> &'static str {
        match self {
            DeviceType::Phone => "P",
            DeviceType::ConnectedCar => "CC",
            DeviceType::Tablet => "T",
        }
    }

    /// Stable numeric code used by the binary trace format.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`DeviceType::code`].
    pub fn from_code(code: u8) -> Option<DeviceType> {
        DeviceType::ALL.get(usize::from(code)).copied()
    }
}

impl std::fmt::Display for DeviceType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Number of UEs of each device type in a population.
///
/// A mix is used both to describe the modeled ("real") population and to
/// scale the synthesized population (design goal 3: arbitrary UE population
/// sizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PopulationMix {
    /// Number of phones.
    pub phones: u32,
    /// Number of connected cars.
    pub connected_cars: u32,
    /// Number of tablets.
    pub tablets: u32,
}

impl PopulationMix {
    /// The paper's modeled population (§4): 23,388 / 9,308 / 4,629.
    pub const PAPER: PopulationMix = PopulationMix {
        phones: 23_388,
        connected_cars: 9_308,
        tablets: 4_629,
    };

    /// Create a mix with the given per-type counts.
    pub fn new(phones: u32, connected_cars: u32, tablets: u32) -> Self {
        PopulationMix {
            phones,
            connected_cars,
            tablets,
        }
    }

    /// Total number of UEs.
    pub fn total(&self) -> u32 {
        self.phones + self.connected_cars + self.tablets
    }

    /// Count for one device type.
    pub fn count(&self, device: DeviceType) -> u32 {
        match device {
            DeviceType::Phone => self.phones,
            DeviceType::ConnectedCar => self.connected_cars,
            DeviceType::Tablet => self.tablets,
        }
    }

    /// Scale every count by `factor`, rounding to the nearest UE.
    ///
    /// Used to build e.g. the paper's validation Scenario 1 (~38K UEs, 1×)
    /// and Scenario 2 (~380K UEs, 10×) populations from the modeled mix.
    pub fn scaled(&self, factor: f64) -> PopulationMix {
        let s = |n: u32| (f64::from(n) * factor).round() as u32;
        PopulationMix {
            phones: s(self.phones),
            connected_cars: s(self.connected_cars),
            tablets: s(self.tablets),
        }
    }

    /// Fraction of the population that is of the given type (0 for an empty
    /// population).
    pub fn share(&self, device: DeviceType) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            f64::from(self.count(device)) / f64::from(total)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for d in DeviceType::ALL {
            assert_eq!(DeviceType::from_code(d.code()), Some(d));
        }
        assert_eq!(DeviceType::from_code(3), None);
    }

    #[test]
    fn paper_population_totals() {
        assert_eq!(PopulationMix::PAPER.total(), 37_325);
    }

    #[test]
    fn scaling() {
        let mix = PopulationMix::new(100, 50, 25);
        let double = mix.scaled(2.0);
        assert_eq!(double, PopulationMix::new(200, 100, 50));
        let tenth = mix.scaled(0.1);
        assert_eq!(tenth, PopulationMix::new(10, 5, 3)); // 2.5 rounds to 3 (round-half-up away from zero)
    }

    #[test]
    fn shares_sum_to_one() {
        let mix = PopulationMix::PAPER;
        let sum: f64 = DeviceType::ALL.iter().map(|&d| mix.share(d)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_population_share_is_zero() {
        let mix = PopulationMix::new(0, 0, 0);
        assert_eq!(mix.share(DeviceType::Phone), 0.0);
    }
}
