//! LTE control-plane event types (Table 1 of the paper).
//!
//! The six event types exchanged between UE/RAN and the mobile core network
//! (events private to UE↔RAN are out of scope, as in the paper). Events fall
//! into two categories (§5.1):
//!
//! * **Category-1** events drive the top-level EMM–ECM state machine:
//!   [`EventType::Attach`], [`EventType::Detach`], [`EventType::ServiceRequest`],
//!   [`EventType::S1ConnRelease`].
//! * **Category-2** events do not change the top-level UE state but depend on
//!   it: [`EventType::Handover`] (CONNECTED only) and [`EventType::Tau`]
//!   (both CONNECTED and IDLE).

use serde::{Deserialize, Serialize};

/// One of the six primary LTE control-plane event types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum EventType {
    /// `ATCH` — registers the UE with the mobile core network (power-on).
    Attach = 0,
    /// `DTCH` — deregisters the UE from the core network (power-off).
    Detach = 1,
    /// `SRV_REQ` — creates a signaling connection to send/receive data.
    ServiceRequest = 2,
    /// `S1_CONN_REL` — releases the signaling connection and associated
    /// data-plane resources.
    S1ConnRelease = 3,
    /// `HO` — hands the UE over from its serving cell to another cell.
    Handover = 4,
    /// `TAU` — tracking-area update, on tracking-area change or periodic
    /// timer expiry.
    Tau = 5,
}

/// The two dependence categories of §5.1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventCategory {
    /// Triggers a transition of the top-level EMM–ECM state machine.
    StateChanging,
    /// Does not change the top-level state, but depends on it.
    StateDependent,
}

impl EventType {
    /// All six event types, in Table 1 order.
    pub const ALL: [EventType; 6] = [
        EventType::Attach,
        EventType::Detach,
        EventType::ServiceRequest,
        EventType::S1ConnRelease,
        EventType::Handover,
        EventType::Tau,
    ];

    /// The paper's short mnemonic for the event (e.g. `SRV_REQ`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            EventType::Attach => "ATCH",
            EventType::Detach => "DTCH",
            EventType::ServiceRequest => "SRV_REQ",
            EventType::S1ConnRelease => "S1_CONN_REL",
            EventType::Handover => "HO",
            EventType::Tau => "TAU",
        }
    }

    /// Dependence category of the event (§5.1).
    pub fn category(self) -> EventCategory {
        match self {
            EventType::Attach
            | EventType::Detach
            | EventType::ServiceRequest
            | EventType::S1ConnRelease => EventCategory::StateChanging,
            EventType::Handover | EventType::Tau => EventCategory::StateDependent,
        }
    }

    /// Stable numeric code used by the binary trace format.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`EventType::code`].
    pub fn from_code(code: u8) -> Option<EventType> {
        EventType::ALL.get(usize::from(code)).copied()
    }

    /// Parse the paper's mnemonic (as produced by [`EventType::mnemonic`]).
    pub fn from_mnemonic(s: &str) -> Option<EventType> {
        EventType::ALL.into_iter().find(|e| e.mnemonic() == s)
    }
}

impl std::fmt::Display for EventType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for e in EventType::ALL {
            assert_eq!(EventType::from_code(e.code()), Some(e));
        }
        assert_eq!(EventType::from_code(6), None);
        assert_eq!(EventType::from_code(255), None);
    }

    #[test]
    fn mnemonics_round_trip() {
        for e in EventType::ALL {
            assert_eq!(EventType::from_mnemonic(e.mnemonic()), Some(e));
        }
        assert_eq!(EventType::from_mnemonic("NOPE"), None);
    }

    #[test]
    fn categories_match_paper() {
        use EventCategory::*;
        assert_eq!(EventType::Attach.category(), StateChanging);
        assert_eq!(EventType::Detach.category(), StateChanging);
        assert_eq!(EventType::ServiceRequest.category(), StateChanging);
        assert_eq!(EventType::S1ConnRelease.category(), StateChanging);
        assert_eq!(EventType::Handover.category(), StateDependent);
        assert_eq!(EventType::Tau.category(), StateDependent);
    }

    #[test]
    fn display_is_mnemonic() {
        assert_eq!(EventType::ServiceRequest.to_string(), "SRV_REQ");
    }
}
