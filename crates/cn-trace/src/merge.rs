//! K-way merging of pre-sorted runs via a tournament (loser) tree.
//!
//! A binary heap pays a sift-down *and* a sift-up per emitted record
//! (`pop` + `push`, ~2·log₂k comparisons). A loser tree stores, at each
//! internal node, the loser of the match played there; emitting the winner
//! and replaying its run's next head against the losers along one
//! leaf-to-root path costs exactly ⌈log₂k⌉ comparisons — the classic
//! replacement-selection merger. [`LoserTree`] is the engine behind
//! [`crate::Trace::merge`], the sequential population stream, and both
//! sides of the sharded parallel generator.
//!
//! Ties are broken by run index (lower index wins), so a merge over runs
//! with duplicated keys is *stable* with respect to run order and therefore
//! fully deterministic.

/// A tournament tree over `k` runs, yielding their elements in ascending
/// order.
///
/// The tree never owns the runs themselves — it holds one *head* element
/// per run and asks the caller for the next element of a run whenever that
/// run's head is consumed ([`LoserTree::pop_and_replace`]). This keeps the
/// structure agnostic to where runs come from: slices, live generators, or
/// blocks arriving over a channel.
///
/// ```
/// use cn_trace::LoserTree;
/// let runs = vec![vec![1, 4, 7], vec![2, 5], vec![0, 9]];
/// let mut cursors = vec![1usize; runs.len()];
/// let heads: Vec<Option<i32>> = runs.iter().map(|r| r.first().copied()).collect();
/// let mut tree = LoserTree::new(heads);
/// let mut out = Vec::new();
/// while let Some(w) = tree.winner() {
///     let next = runs[w].get(cursors[w]).copied();
///     cursors[w] += 1;
///     out.push(tree.pop_and_replace(next).expect("winner has a head"));
/// }
/// assert_eq!(out, vec![0, 1, 2, 4, 5, 7, 9]);
/// ```
#[derive(Debug, Clone)]
pub struct LoserTree<T: Ord> {
    /// Current head of each run (`None` = exhausted).
    heads: Vec<Option<T>>,
    /// `losers[0]` is the overall winner; `losers[1..k]` hold the loser of
    /// the match at each internal node of the tournament.
    losers: Vec<usize>,
    /// Number of runs whose head is `Some`.
    live: usize,
}

impl<T: Ord> LoserTree<T> {
    /// Build the tree from the first element of each run (`None` for runs
    /// that are empty from the start). Cost: k − 1 comparisons.
    pub fn new(heads: Vec<Option<T>>) -> LoserTree<T> {
        let k = heads.len();
        let live = heads.iter().filter(|h| h.is_some()).count();
        if k == 0 {
            return LoserTree {
                heads,
                losers: Vec::new(),
                live,
            };
        }
        // Bottom-up tournament in a complete-binary-tree layout: leaf `j`
        // sits at node `k + j`, internal nodes are `1..k`, the parent of
        // node `n` is `n / 2`. Descending order guarantees both children
        // of an internal node are decided before it plays its match.
        let mut losers = vec![0usize; k];
        let mut winners = vec![usize::MAX; 2 * k];
        for j in 0..k {
            winners[k + j] = j;
        }
        for node in (1..k).rev() {
            let a = winners[2 * node];
            let b = winners[2 * node + 1];
            let (w, l) = if beats(&heads, a, b) { (a, b) } else { (b, a) };
            winners[node] = w;
            losers[node] = l;
        }
        losers[0] = winners[1];
        LoserTree {
            heads,
            losers,
            live,
        }
    }

    /// Index of the run holding the overall smallest head, or `None` when
    /// every run is exhausted.
    pub fn winner(&self) -> Option<usize> {
        let w = *self.losers.first()?;
        self.heads[w].as_ref().map(|_| w)
    }

    /// The smallest head across all runs, without consuming it.
    pub fn peek(&self) -> Option<&T> {
        self.heads[self.winner()?].as_ref()
    }

    /// Current head of run `run` (`None` once that run is exhausted).
    pub fn head(&self, run: usize) -> Option<&T> {
        self.heads[run].as_ref()
    }

    /// Index of the run holding the *second*-smallest head — the run that
    /// would win if the current winner's run were exhausted — or `None`
    /// when at most one run is still live.
    ///
    /// Classic tournament property: every run other than the winner lost
    /// exactly once along some root path, and the overall runner-up lost
    /// its match *against the winner*, so it is one of the ⌈log₂k⌉ losers
    /// stored on the winner's leaf-to-root path. This is the batched-merge
    /// primitive: every element of the winner's run that precedes the
    /// runner-up's head can be emitted without touching the tree (see
    /// [`LoserTree::replace_run`]).
    pub fn runner_up(&self) -> Option<usize> {
        let w = self.winner()?;
        let k = self.heads.len();
        let mut best: Option<usize> = None;
        let mut node = (k + w) / 2;
        while node > 0 {
            let cand = self.losers[node];
            if self.heads[cand].is_some() {
                best = Some(match best {
                    Some(b) if !beats(&self.heads, cand, b) => b,
                    _ => cand,
                });
            }
            node /= 2;
        }
        best
    }

    /// Number of runs that still have elements.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Consume the winning head and install `next` (the winning run's next
    /// element, `None` when it is exhausted), then replay matches along the
    /// winner's leaf-to-root path: ⌈log₂k⌉ comparisons, no allocation.
    ///
    /// Returns the consumed element, or `None` when the merge is complete.
    pub fn pop_and_replace(&mut self, next: Option<T>) -> Option<T> {
        let w = self.winner()?;
        let popped = std::mem::replace(&mut self.heads[w], next);
        if self.heads[w].is_none() {
            self.live -= 1;
        }
        let k = self.heads.len();
        let mut winner = w;
        let mut node = (k + w) / 2;
        while node > 0 {
            if beats(&self.heads, self.losers[node], winner) {
                std::mem::swap(&mut self.losers[node], &mut winner);
            }
            node /= 2;
        }
        self.losers[0] = winner;
        popped
    }

    /// Batched-advance entry point: replace the winner's head with `next`
    /// and replay its leaf-to-root path, *discarding* the popped head.
    ///
    /// This is how a block-draining consumer advances the merge: it reads
    /// the winner's run directly (every element preceding the
    /// [`LoserTree::runner_up`] head, found with one comparison each), then
    /// installs the run's next element with a single ⌈log₂k⌉ replay for the
    /// whole run instead of one per record. No-op when the merge is already
    /// complete.
    pub fn replace_run(&mut self, next: Option<T>) {
        let _ = self.pop_and_replace(next);
    }
}

/// Does run `a` beat run `b`? Smaller head wins; an exhausted run loses to
/// everything; all ties break toward the lower run index (stability).
fn beats<T: Ord>(heads: &[Option<T>], a: usize, b: usize) -> bool {
    match (&heads[a], &heads[b]) {
        (Some(x), Some(y)) => match x.cmp(y) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => a < b,
        },
        (Some(_), None) => true,
        (None, Some(_)) => false,
        (None, None) => a < b,
    }
}

/// Sentinel key marking an exhausted run in a [`KeyLoserTree`]. Live keys
/// must be strictly smaller.
pub const EXHAUSTED_KEY: u128 = u128::MAX;

/// A struct-of-arrays tournament tree over packed `u128` keys — the
/// cache-compact sibling of [`LoserTree`].
///
/// [`LoserTree<TraceRecord>`] keeps a `Vec<Option<TraceRecord>>` of heads:
/// 16-byte records behind an `Option`, compared through the full
/// `(t, ue, event)` `Ord`. When the merge fans over tens of thousands of
/// runs (one per UE in the population stream), every replay touches
/// ⌈log₂k⌉ of those fat heads. `KeyLoserTree` strips the tournament down
/// to two parallel arrays — `keys: Vec<u128>` and `losers: Vec<u32>` — so
/// a replay is ⌈log₂k⌉ integer compares over dense memory and nothing
/// else. Run payloads (the records themselves) live wherever the caller
/// keeps them, addressed by the winning run index.
///
/// Keys are ordered as plain `u128`s with [`EXHAUSTED_KEY`] (`u128::MAX`)
/// as the "run empty" sentinel; ties break toward the lower run index,
/// mirroring [`LoserTree`]. For trace merging the key is
/// [`TraceRecord::merge_key`] (`t_ms << 32 | ue`), which embeds the record
/// order exactly whenever no two live heads share `(t, ue)` — guaranteed
/// for per-UE event streams, where each UE appears in exactly one run and
/// per-UE timestamps strictly increase.
///
/// [`TraceRecord::merge_key`]: crate::TraceRecord::merge_key
#[derive(Debug, Clone)]
pub struct KeyLoserTree {
    /// Current head key of each run ([`EXHAUSTED_KEY`] = exhausted).
    keys: Vec<u128>,
    /// `losers[0]` is the overall winner; `losers[1..k]` hold the loser of
    /// the match at each internal node.
    losers: Vec<u32>,
    /// Number of runs whose key is live.
    live: usize,
}

impl KeyLoserTree {
    /// Build the tree from the head key of each run ([`EXHAUSTED_KEY`] for
    /// runs that start empty). Cost: k − 1 comparisons.
    pub fn new(keys: Vec<u128>) -> KeyLoserTree {
        let k = keys.len();
        let live = keys.iter().filter(|&&h| h != EXHAUSTED_KEY).count();
        if k == 0 {
            return KeyLoserTree {
                keys,
                losers: Vec::new(),
                live,
            };
        }
        let mut losers = vec![0u32; k];
        let mut winners = vec![u32::MAX; 2 * k];
        for j in 0..k {
            winners[k + j] = j as u32;
        }
        for node in (1..k).rev() {
            let a = winners[2 * node];
            let b = winners[2 * node + 1];
            let (w, l) = if key_beats(&keys, a, b) {
                (a, b)
            } else {
                (b, a)
            };
            winners[node] = w;
            losers[node] = l;
        }
        losers[0] = winners[1];
        KeyLoserTree { keys, losers, live }
    }

    /// Index of the run holding the smallest live key, or `None` when every
    /// run is exhausted.
    #[inline]
    pub fn winner(&self) -> Option<usize> {
        let w = *self.losers.first()? as usize;
        (self.keys[w] != EXHAUSTED_KEY).then_some(w)
    }

    /// Current head key of run `run` ([`EXHAUSTED_KEY`] once exhausted).
    #[inline]
    pub fn key(&self, run: usize) -> u128 {
        self.keys[run]
    }

    /// Number of runs that still have elements.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Index of the run holding the *second*-smallest head, or `None` when
    /// at most one run is live. Same tournament-path walk as
    /// [`LoserTree::runner_up`]: the runner-up lost its match against the
    /// winner, so it sits among the ⌈log₂k⌉ losers on the winner's
    /// leaf-to-root path.
    pub fn runner_up(&self) -> Option<usize> {
        let w = self.winner()?;
        let k = self.keys.len();
        let mut best: Option<u32> = None;
        let mut node = (k + w) / 2;
        while node > 0 {
            let cand = self.losers[node];
            if self.keys[cand as usize] != EXHAUSTED_KEY {
                best = Some(match best {
                    Some(b) if !key_beats(&self.keys, cand, b) => b,
                    _ => cand,
                });
            }
            node /= 2;
        }
        best.map(|b| b as usize)
    }

    /// Replace the winner's key with `next` ([`EXHAUSTED_KEY`] when its run
    /// is exhausted) and replay matches along the winner's leaf-to-root
    /// path: ⌈log₂k⌉ integer comparisons, no allocation. No-op when the
    /// merge is already complete.
    #[inline]
    pub fn replace_winner(&mut self, next: u128) {
        let Some(w) = self.winner() else { return };
        self.keys[w] = next;
        if next == EXHAUSTED_KEY {
            self.live -= 1;
        }
        let k = self.keys.len();
        let mut winner = w as u32;
        let mut node = (k + w) / 2;
        while node > 0 {
            if key_beats(&self.keys, self.losers[node], winner) {
                std::mem::swap(&mut self.losers[node], &mut winner);
            }
            node /= 2;
        }
        self.losers[0] = winner;
    }
}

/// Does run `a` beat run `b` under key order? Smaller key wins; ties
/// (including two exhausted runs) break toward the lower run index.
#[inline]
fn key_beats(keys: &[u128], a: u32, b: u32) -> bool {
    let (ka, kb) = (keys[a as usize], keys[b as usize]);
    ka < kb || (ka == kb && a < b)
}

/// Merge pre-sorted runs into one sorted vector (convenience wrapper used
/// by tests and small callers; the streaming paths drive [`LoserTree`]
/// directly).
pub fn merge_sorted<T: Ord + Copy>(runs: &[Vec<T>]) -> Vec<T> {
    let total = runs.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut cursors = vec![1usize; runs.len()];
    let mut tree = LoserTree::new(runs.iter().map(|r| r.first().copied()).collect());
    while let Some(w) = tree.winner() {
        let next = runs[w].get(cursors[w]).copied();
        cursors[w] += 1;
        out.push(tree.pop_and_replace(next).expect("winner has a head"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree_yields_nothing() {
        let mut tree: LoserTree<u32> = LoserTree::new(Vec::new());
        assert_eq!(tree.winner(), None);
        assert_eq!(tree.peek(), None);
        assert_eq!(tree.live(), 0);
        assert_eq!(tree.pop_and_replace(None), None);
    }

    #[test]
    fn all_exhausted_runs_yield_nothing() {
        let mut tree: LoserTree<u32> = LoserTree::new(vec![None, None, None]);
        assert_eq!(tree.winner(), None);
        assert_eq!(tree.pop_and_replace(None), None);
    }

    #[test]
    fn single_run_drains_in_order() {
        assert_eq!(merge_sorted(&[vec![1, 2, 3]]), vec![1, 2, 3]);
    }

    #[test]
    fn merges_across_run_counts() {
        // Exercise every k in 1..=9 (non-powers-of-two stress the
        // complete-binary-tree index math).
        for k in 1..=9usize {
            let runs: Vec<Vec<u64>> = (0..k)
                .map(|i| (0..5).map(|j| (j * k + i) as u64).collect())
                .collect();
            let merged = merge_sorted(&runs);
            let mut expect: Vec<u64> = runs.iter().flatten().copied().collect();
            expect.sort_unstable();
            assert_eq!(merged, expect, "k = {k}");
        }
    }

    #[test]
    fn handles_empty_and_single_element_runs() {
        let runs = vec![vec![], vec![5], vec![], vec![1, 9], vec![5]];
        assert_eq!(merge_sorted(&runs), vec![1, 5, 5, 9]);
    }

    #[test]
    fn ties_break_toward_lower_run_index() {
        // Both runs hold equal keys; a stable merge drains run 0 first at
        // every tie. Track provenance through a (key, run) pair ordered by
        // key only via merging indices manually.
        let runs = [vec![(1u32, 'a'), (2, 'a')], vec![(1, 'b'), (2, 'b')]];
        let mut cursors = [1usize; 2];
        let mut tree = LoserTree::new(vec![Some((1u32, 0usize)), Some((1, 1))]);
        let mut order = Vec::new();
        while let Some(w) = tree.winner() {
            let next = runs[w].get(cursors[w]).map(|&(key, _)| (key, w));
            cursors[w] += 1;
            let (key, run) = tree.pop_and_replace(next).unwrap();
            order.push((key, run));
        }
        assert_eq!(order, vec![(1, 0), (1, 1), (2, 0), (2, 1)]);
    }

    #[test]
    fn randomized_runs_match_sort_unstable() {
        // Deterministic xorshift so the test needs no external RNG crate.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..200 {
            let k = (next() % 12) as usize;
            let runs: Vec<Vec<u64>> = (0..k)
                .map(|_| {
                    let len = (next() % 20) as usize;
                    let mut r: Vec<u64> = (0..len).map(|_| next() % 50).collect();
                    r.sort_unstable();
                    r
                })
                .collect();
            let merged = merge_sorted(&runs);
            let mut expect: Vec<u64> = runs.iter().flatten().copied().collect();
            expect.sort_unstable();
            assert_eq!(merged, expect, "trial {trial}, k = {k}");
        }
    }

    #[test]
    fn runner_up_is_the_second_smallest_head() {
        // heads 5, 3, 9, 3: run 1 wins (ties break low), run 3 is next.
        let tree = LoserTree::new(vec![Some(5u32), Some(3), Some(9), Some(3)]);
        assert_eq!(tree.winner(), Some(1));
        assert_eq!(tree.runner_up(), Some(3));
        assert_eq!(tree.head(3), Some(&3));
        // A single live run has no runner-up.
        let tree = LoserTree::new(vec![None, Some(7u32), None]);
        assert_eq!(tree.winner(), Some(1));
        assert_eq!(tree.runner_up(), None);
        // Empty tree: neither.
        let tree: LoserTree<u32> = LoserTree::new(Vec::new());
        assert_eq!(tree.runner_up(), None);
    }

    #[test]
    fn runner_up_matches_naive_minimum_throughout_a_merge() {
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..100 {
            let k = (next() % 9 + 1) as usize;
            let runs: Vec<Vec<u64>> = (0..k)
                .map(|_| {
                    let len = (next() % 12) as usize;
                    let mut r: Vec<u64> = (0..len).map(|_| next() % 30).collect();
                    r.sort_unstable();
                    r
                })
                .collect();
            let mut cursors = vec![1usize; k];
            let mut tree = LoserTree::new(runs.iter().map(|r| r.first().copied()).collect());
            while let Some(w) = tree.winner() {
                // Naive second-smallest: min over every non-winner head,
                // ties toward the lower run index.
                let naive = (0..k)
                    .filter(|&i| i != w && tree.head(i).is_some())
                    .min_by(|&a, &b| tree.head(a).cmp(&tree.head(b)).then(a.cmp(&b)));
                assert_eq!(tree.runner_up(), naive, "trial {trial}, k {k}");
                let n = runs[w].get(cursors[w]).copied();
                cursors[w] += 1;
                tree.pop_and_replace(n);
            }
        }
    }

    #[test]
    fn block_drain_via_runner_up_equals_merge_sorted() {
        // Drive the merge the way the sharded consumer does: emit the
        // winner's whole run prefix up to the runner-up's head with direct
        // reads, then advance the tree once per run via replace_run.
        let runs = vec![
            vec![0u64, 1, 2, 3, 10, 11],
            vec![4, 5, 6],
            vec![2, 7, 12],
            vec![],
        ];
        let mut cursors = vec![0usize; runs.len()];
        let mut tree = LoserTree::new(runs.iter().map(|r| r.first().copied()).collect());
        for c in cursors.iter_mut().zip(&runs) {
            *c.0 = usize::from(!c.1.is_empty());
        }
        let mut out = Vec::new();
        while let Some(w) = tree.winner() {
            let bound = tree.runner_up().map(|u| (*tree.head(u).unwrap(), u));
            // tree.head(w) is runs[w][cursors[w] - 1]; emit it plus every
            // successor that still precedes the bound.
            out.push(*tree.head(w).unwrap());
            while let Some(&x) = runs[w].get(cursors[w]) {
                let precedes = match bound {
                    None => true,
                    Some((b, u)) => x < b || (x == b && w < u),
                };
                if !precedes {
                    break;
                }
                out.push(x);
                cursors[w] += 1;
            }
            let n = runs[w].get(cursors[w]).copied();
            cursors[w] += 1;
            tree.replace_run(n);
        }
        let mut expect: Vec<u64> = runs.iter().flatten().copied().collect();
        expect.sort_unstable();
        assert_eq!(out, expect);
    }

    /// Drive a [`KeyLoserTree`] merge over u128 key runs.
    fn key_merge(runs: &[Vec<u128>]) -> Vec<u128> {
        let mut cursors = vec![1usize; runs.len()];
        let mut tree = KeyLoserTree::new(
            runs.iter()
                .map(|r| r.first().copied().unwrap_or(EXHAUSTED_KEY))
                .collect(),
        );
        let mut out = Vec::new();
        while let Some(w) = tree.winner() {
            out.push(tree.key(w));
            let next = runs[w].get(cursors[w]).copied().unwrap_or(EXHAUSTED_KEY);
            cursors[w] += 1;
            tree.replace_winner(next);
        }
        out
    }

    #[test]
    fn key_tree_matches_loser_tree_on_random_runs() {
        let mut state = 0xD1CE_BA5E_0F00_D00Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..200 {
            let k = (next() % 12) as usize;
            let runs: Vec<Vec<u128>> = (0..k)
                .map(|_| {
                    let len = (next() % 20) as usize;
                    let mut r: Vec<u128> = (0..len).map(|_| u128::from(next() % 50)).collect();
                    r.sort_unstable();
                    r
                })
                .collect();
            assert_eq!(
                key_merge(&runs),
                merge_sorted(&runs),
                "trial {trial}, k = {k}"
            );
        }
    }

    #[test]
    fn key_tree_edge_cases() {
        // Empty tree.
        let mut tree = KeyLoserTree::new(Vec::new());
        assert_eq!(tree.winner(), None);
        assert_eq!(tree.runner_up(), None);
        assert_eq!(tree.live(), 0);
        tree.replace_winner(EXHAUSTED_KEY); // no-op, no panic
                                            // All runs exhausted from the start.
        let tree = KeyLoserTree::new(vec![EXHAUSTED_KEY; 3]);
        assert_eq!(tree.winner(), None);
        assert_eq!(tree.live(), 0);
        // Single live run: winner but no runner-up.
        let tree = KeyLoserTree::new(vec![EXHAUSTED_KEY, 7, EXHAUSTED_KEY]);
        assert_eq!(tree.winner(), Some(1));
        assert_eq!(tree.runner_up(), None);
        assert_eq!(tree.live(), 1);
    }

    #[test]
    fn key_tree_ties_break_toward_lower_run_index() {
        let runs = [vec![1u128, 2], vec![1, 2]];
        let mut cursors = [1usize; 2];
        let mut tree = KeyLoserTree::new(vec![1, 1]);
        let mut order = Vec::new();
        while let Some(w) = tree.winner() {
            order.push((tree.key(w), w));
            let next = runs[w].get(cursors[w]).copied().unwrap_or(EXHAUSTED_KEY);
            cursors[w] += 1;
            tree.replace_winner(next);
        }
        assert_eq!(order, vec![(1, 0), (1, 1), (2, 0), (2, 1)]);
    }

    #[test]
    fn key_tree_runner_up_matches_naive_minimum_throughout() {
        let mut state = 0xFEED_F00D_CAFE_BEEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..100 {
            let k = (next() % 9 + 1) as usize;
            let runs: Vec<Vec<u128>> = (0..k)
                .map(|_| {
                    let len = (next() % 12) as usize;
                    let mut r: Vec<u128> = (0..len).map(|_| u128::from(next() % 30)).collect();
                    r.sort_unstable();
                    r
                })
                .collect();
            let mut cursors = vec![1usize; k];
            let mut tree = KeyLoserTree::new(
                runs.iter()
                    .map(|r| r.first().copied().unwrap_or(EXHAUSTED_KEY))
                    .collect(),
            );
            while let Some(w) = tree.winner() {
                let naive = (0..k)
                    .filter(|&i| i != w && tree.key(i) != EXHAUSTED_KEY)
                    .min_by(|&a, &b| tree.key(a).cmp(&tree.key(b)).then(a.cmp(&b)));
                assert_eq!(tree.runner_up(), naive, "trial {trial}, k {k}");
                let n = runs[w].get(cursors[w]).copied().unwrap_or(EXHAUSTED_KEY);
                cursors[w] += 1;
                tree.replace_winner(n);
            }
            assert_eq!(tree.live(), 0);
        }
    }

    #[test]
    fn live_tracks_unexhausted_runs() {
        let runs = [vec![1u32], vec![2, 3]];
        let mut cursors = [1usize; 2];
        let mut tree = LoserTree::new(vec![Some(1u32), Some(2)]);
        assert_eq!(tree.live(), 2);
        let mut live_seen = Vec::new();
        while let Some(w) = tree.winner() {
            let next = runs[w].get(cursors[w]).copied();
            cursors[w] += 1;
            tree.pop_and_replace(next);
            live_seen.push(tree.live());
        }
        assert_eq!(live_seen, vec![1, 1, 0]);
    }
}
