//! Arena-encoded record blocks: events laid out in the on-disk binary
//! format at generation time.
//!
//! The binary trace format ([`crate::io`]) stores fixed 14-byte
//! little-endian records. An [`EncodedBlock`] is a flat byte arena with
//! that exact stride, filled by pushing [`TraceRecord`]s once; from then
//! on the block (or any whole-record prefix of it) moves through spill
//! files and the export sink **verbatim** — the k-way merge and the
//! writer never re-encode, they copy byte ranges
//! ([`crate::io::BinaryStreamWriter::write_encoded`]).
//!
//! Merging encoded runs needs an order without decoding full records.
//! [`record_key_at`] reads the `(t_ms, ue)` prefix of an encoded record
//! into the same packed `u128` key as [`TraceRecord::merge_key`], and
//! [`encoded_prefix`] gallops over a block for the run-prefix that
//! precedes a merge bound — the two primitives behind the out-of-core
//! block-drain merge.

use crate::record::TraceRecord;

/// Bytes per encoded record: u64 `t_ms` + u32 `ue` + u8 device + u8 event.
pub const RECORD_BYTES: usize = 14;

/// A growable arena of records already laid out in the binary trace
/// format (14-byte stride, little-endian, no header).
///
/// ```
/// use cn_trace::block::EncodedBlock;
/// use cn_trace::{DeviceType, EventType, Timestamp, TraceRecord, UeId};
/// let mut block = EncodedBlock::with_capacity(2);
/// let r = TraceRecord::new(Timestamp::from_millis(7), UeId(3), DeviceType::Phone, EventType::Attach);
/// block.push(&r);
/// assert_eq!(block.len(), 1);
/// assert_eq!(block.as_bytes().len(), 14);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EncodedBlock {
    bytes: Vec<u8>,
}

impl EncodedBlock {
    /// An empty block.
    pub fn new() -> EncodedBlock {
        EncodedBlock::default()
    }

    /// An empty block with room for `records` records.
    pub fn with_capacity(records: usize) -> EncodedBlock {
        EncodedBlock {
            bytes: Vec::with_capacity(records * RECORD_BYTES),
        }
    }

    /// Append one record, encoding it into the arena.
    #[inline]
    pub fn push(&mut self, r: &TraceRecord) {
        self.bytes.extend_from_slice(&r.t.as_millis().to_le_bytes());
        self.bytes.extend_from_slice(&r.ue.get().to_le_bytes());
        self.bytes.push(r.device.code());
        self.bytes.push(r.event.code());
    }

    /// Number of records in the block.
    pub fn len(&self) -> usize {
        self.bytes.len() / RECORD_BYTES
    }

    /// True when no records have been pushed.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The encoded payload: `len() * 14` bytes, ready to write verbatim.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Drop all records, keeping the allocation.
    pub fn clear(&mut self) {
        self.bytes.clear();
    }
}

/// Packed `(t_ms, ue)` merge key of the `i`-th encoded record in `bytes`
/// (a headerless 14-byte-stride payload). Identical to
/// [`TraceRecord::merge_key`] on the decoded record.
///
/// # Panics
/// Panics if `bytes` does not hold record `i` in full.
#[inline]
pub fn record_key_at(bytes: &[u8], i: usize) -> u128 {
    let off = i * RECORD_BYTES;
    let t = u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8-byte t_ms"));
    let ue = u32::from_le_bytes(bytes[off + 8..off + 12].try_into().expect("4-byte ue"));
    (u128::from(t) << 32) | u128::from(ue)
}

/// Length (in records) of the prefix of an encoded sorted run that
/// precedes a merge bound: records whose key is `< bound`, or `<= bound`
/// when `wins_ties` (the run owning the prefix wins key ties against the
/// run owning the bound).
///
/// Gallops (doubling probe, then binary search) so a long winning run
/// costs O(log prefix) key decodes rather than one comparison per record.
pub fn encoded_prefix(bytes: &[u8], bound: u128, wins_ties: bool) -> usize {
    let n = bytes.len() / RECORD_BYTES;
    let precedes = |i: usize| {
        let k = record_key_at(bytes, i);
        k < bound || (wins_ties && k == bound)
    };
    if n == 0 || !precedes(0) {
        return 0;
    }
    // Gallop for the first record that does NOT precede the bound.
    let mut lo = 0usize; // known to precede
    let mut step = 1usize;
    while lo + step < n && precedes(lo + step) {
        lo += step;
        step *= 2;
    }
    let mut hi = (lo + step).min(n); // first candidate that may not precede
                                     // Binary search in (lo, hi]: invariant precedes(lo), !precedes(hi) or hi == n.
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if precedes(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceType;
    use crate::event::EventType;
    use crate::record::UeId;
    use crate::time::Timestamp;

    fn rec(t: u64, ue: u32) -> TraceRecord {
        TraceRecord::new(
            Timestamp::from_millis(t),
            UeId(ue),
            DeviceType::Phone,
            EventType::Attach,
        )
    }

    #[test]
    fn push_matches_binary_writer_layout() {
        let records = [rec(100, 1), rec(u64::MAX >> 1, u32::MAX), rec(0, 0)];
        let mut block = EncodedBlock::new();
        for r in &records {
            block.push(r);
        }
        let mut cursor = std::io::Cursor::new(Vec::new());
        let mut w = crate::io::BinaryStreamWriter::new(&mut cursor).unwrap();
        for r in &records {
            w.write(r).unwrap();
        }
        w.finish().unwrap();
        // Skip the 16-byte header; the payload must be byte-identical.
        assert_eq!(block.as_bytes(), &cursor.into_inner()[16..]);
        assert_eq!(block.len(), records.len());
    }

    #[test]
    fn record_key_matches_merge_key() {
        for r in [rec(0, 0), rec(5, 9), rec(u64::MAX, u32::MAX)] {
            let mut block = EncodedBlock::new();
            block.push(&r);
            assert_eq!(record_key_at(block.as_bytes(), 0), r.merge_key());
        }
        // Multi-record indexing.
        let mut block = EncodedBlock::new();
        block.push(&rec(1, 1));
        block.push(&rec(2, 2));
        assert_eq!(record_key_at(block.as_bytes(), 1), rec(2, 2).merge_key());
    }

    #[test]
    fn clear_keeps_capacity_and_empties() {
        let mut block = EncodedBlock::with_capacity(4);
        block.push(&rec(1, 1));
        assert!(!block.is_empty());
        block.clear();
        assert!(block.is_empty());
        assert_eq!(block.len(), 0);
    }

    #[test]
    fn encoded_prefix_matches_linear_scan() {
        // Sorted run of keys 0, 2, 4, ..., 58 (ue 0 so key == t << 32).
        let mut block = EncodedBlock::new();
        for t in (0..60u64).step_by(2) {
            block.push(&rec(t, 0));
        }
        let n = block.len();
        let key = |t: u64| (u128::from(t)) << 32;
        for bound_t in 0..62u64 {
            for wins_ties in [false, true] {
                let got = encoded_prefix(block.as_bytes(), key(bound_t), wins_ties);
                let expect = (0..n)
                    .take_while(|&i| {
                        let k = record_key_at(block.as_bytes(), i);
                        k < key(bound_t) || (wins_ties && k == key(bound_t))
                    })
                    .count();
                assert_eq!(got, expect, "bound {bound_t}, wins_ties {wins_ties}");
            }
        }
        // Empty payload.
        assert_eq!(encoded_prefix(&[], 0, true), 0);
    }
}
