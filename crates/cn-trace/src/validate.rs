//! Structural well-formedness checks for traces.
//!
//! These checks are *structural* (sortedness, stable per-UE device types).
//! Protocol-level conformance — e.g. "HO may only occur in ECM-CONNECTED" —
//! requires replaying the 3GPP state machines and lives in
//! `cn-statemachine::replay`.

use crate::record::UeId;
use crate::trace::Trace;
use std::collections::HashMap;

/// A structural defect found in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WellFormedError {
    /// Records are not sorted by `(t, ue, event)` at the given index.
    NotSorted {
        /// Index of the first out-of-order record.
        index: usize,
    },
    /// A UE appears with two different device types.
    InconsistentDevice {
        /// The offending UE.
        ue: UeId,
    },
}

impl std::fmt::Display for WellFormedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WellFormedError::NotSorted { index } => {
                write!(f, "trace not sorted at record index {index}")
            }
            WellFormedError::InconsistentDevice { ue } => {
                write!(f, "{ue} appears with multiple device types")
            }
        }
    }
}

impl std::error::Error for WellFormedError {}

/// Check a trace for structural well-formedness.
///
/// Returns every defect found (empty = well-formed).
pub fn check_well_formed(trace: &Trace) -> Vec<WellFormedError> {
    let mut errors = Vec::new();
    let records = trace.records();
    for i in 1..records.len() {
        if records[i] < records[i - 1] {
            errors.push(WellFormedError::NotSorted { index: i });
            break; // one sortedness report is enough
        }
    }
    let mut devices = HashMap::new();
    for r in records {
        let prev = devices.insert(r.ue, r.device);
        if prev.is_some_and(|d| d != r.device)
            && !errors.contains(&WellFormedError::InconsistentDevice { ue: r.ue })
        {
            errors.push(WellFormedError::InconsistentDevice { ue: r.ue });
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceType;
    use crate::event::EventType;
    use crate::record::TraceRecord;
    use crate::time::Timestamp;

    fn rec(t: u64, ue: u32, dev: DeviceType) -> TraceRecord {
        TraceRecord::new(Timestamp::from_millis(t), UeId(ue), dev, EventType::Tau)
    }

    #[test]
    fn well_formed_trace_passes() {
        let t = Trace::from_records(vec![
            rec(10, 0, DeviceType::Phone),
            rec(20, 1, DeviceType::Tablet),
        ]);
        assert!(check_well_formed(&t).is_empty());
    }

    #[test]
    fn inconsistent_device_detected_once() {
        let t = Trace::from_records(vec![
            rec(10, 0, DeviceType::Phone),
            rec(20, 0, DeviceType::Tablet),
            rec(30, 0, DeviceType::ConnectedCar),
        ]);
        let errs = check_well_formed(&t);
        assert_eq!(
            errs,
            vec![WellFormedError::InconsistentDevice { ue: UeId(0) }]
        );
    }

    #[test]
    fn unsorted_detected() {
        // Bypass the sorting constructor to simulate corruption.
        let mut t = Trace::new();
        t.push(rec(10, 0, DeviceType::Phone));
        t.push(rec(20, 0, DeviceType::Phone));
        // Trace::push keeps things sorted, so craft via from_records and then
        // check that a sorted trace passes; direct corruption is covered by
        // the io tests (binary format preserves order).
        assert!(check_well_formed(&t).is_empty());
    }
}
