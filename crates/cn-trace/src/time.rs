//! Millisecond timestamps and hour-of-day arithmetic.
//!
//! The paper's trace has millisecond granularity and all modeling is done on
//! non-overlapping 1-hour intervals, with the same hour-of-day pooled across
//! days (§4.1.1). We therefore use a plain `u64` millisecond counter with
//! `t = 0` defined as midnight of day 0.

use serde::{Deserialize, Serialize};

/// Milliseconds per second.
pub const MS_PER_SEC: u64 = 1_000;
/// Milliseconds per minute.
pub const MS_PER_MIN: u64 = 60 * MS_PER_SEC;
/// Milliseconds per hour.
pub const MS_PER_HOUR: u64 = 60 * MS_PER_MIN;
/// Milliseconds per day.
pub const MS_PER_DAY: u64 = 24 * MS_PER_HOUR;

/// A point in time, in milliseconds since midnight of day 0.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Timestamp(ms)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Timestamp(secs * MS_PER_SEC)
    }

    /// Construct from fractional seconds (values below zero clamp to zero).
    pub fn from_secs_f64(secs: f64) -> Self {
        Timestamp((secs.max(0.0) * MS_PER_SEC as f64).round() as u64)
    }

    /// Construct from a (day, hour-of-day) pair, at the start of that hour.
    pub const fn at_hour(day: u64, hour: u8) -> Self {
        Timestamp(day * MS_PER_DAY + hour as u64 * MS_PER_HOUR)
    }

    /// Raw milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MS_PER_SEC as f64
    }

    /// The hour of day (0–23) this timestamp falls in.
    pub fn hour_of_day(self) -> HourOfDay {
        HourOfDay(((self.0 % MS_PER_DAY) / MS_PER_HOUR) as u8)
    }

    /// The day index (0-based) this timestamp falls in.
    pub const fn day(self) -> u64 {
        self.0 / MS_PER_DAY
    }

    /// Offset in milliseconds from the start of the containing hour.
    pub const fn offset_in_hour(self) -> u64 {
        self.0 % MS_PER_HOUR
    }

    /// Start of the containing 1-hour interval.
    pub const fn hour_start(self) -> Timestamp {
        Timestamp(self.0 - self.0 % MS_PER_HOUR)
    }

    /// Saturating addition of a millisecond duration.
    pub const fn saturating_add(self, ms: u64) -> Timestamp {
        Timestamp(self.0.saturating_add(ms))
    }

    /// Duration in milliseconds from `earlier` to `self` (panics in debug
    /// builds if `earlier > self`).
    pub fn since(self, earlier: Timestamp) -> u64 {
        debug_assert!(earlier.0 <= self.0, "since() called with later start");
        self.0 - earlier.0
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let day = self.day();
        let rem = self.0 % MS_PER_DAY;
        let h = rem / MS_PER_HOUR;
        let m = (rem % MS_PER_HOUR) / MS_PER_MIN;
        let s = (rem % MS_PER_MIN) / MS_PER_SEC;
        let ms = rem % MS_PER_SEC;
        write!(f, "d{day} {h:02}:{m:02}:{s:02}.{ms:03}")
    }
}

/// An hour of the day, 0–23.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct HourOfDay(pub u8);

impl HourOfDay {
    /// All 24 hours in order.
    pub fn all() -> impl Iterator<Item = HourOfDay> {
        (0..24).map(HourOfDay)
    }

    /// Construct, wrapping values ≥ 24.
    pub const fn new(hour: u8) -> Self {
        HourOfDay(hour % 24)
    }

    /// The hour following this one (wrapping 23 → 0).
    pub const fn next(self) -> HourOfDay {
        HourOfDay((self.0 + 1) % 24)
    }

    /// Raw hour value, 0–23.
    pub const fn get(self) -> u8 {
        self.0
    }

    /// Index usable for 24-element lookup tables.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for HourOfDay {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:02}h", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hour_and_day_extraction() {
        let t = Timestamp::at_hour(3, 17).saturating_add(42 * MS_PER_MIN);
        assert_eq!(t.day(), 3);
        assert_eq!(t.hour_of_day(), HourOfDay(17));
        assert_eq!(t.offset_in_hour(), 42 * MS_PER_MIN);
        assert_eq!(t.hour_start(), Timestamp::at_hour(3, 17));
    }

    #[test]
    fn hour_wraps() {
        assert_eq!(HourOfDay::new(24), HourOfDay(0));
        assert_eq!(HourOfDay(23).next(), HourOfDay(0));
        assert_eq!(HourOfDay(7).next(), HourOfDay(8));
    }

    #[test]
    fn secs_round_trip() {
        let t = Timestamp::from_secs_f64(1.234);
        assert_eq!(t.as_millis(), 1234);
        assert!((t.as_secs_f64() - 1.234).abs() < 1e-9);
        assert_eq!(Timestamp::from_secs_f64(-5.0).as_millis(), 0);
    }

    #[test]
    fn display_formats() {
        let t = Timestamp::at_hour(2, 5).saturating_add(61_500);
        assert_eq!(t.to_string(), "d2 05:01:01.500");
        assert_eq!(HourOfDay(9).to_string(), "09h");
    }

    #[test]
    fn since_computes_difference() {
        let a = Timestamp::from_millis(500);
        let b = Timestamp::from_millis(1_700);
        assert_eq!(b.since(a), 1_200);
    }
}
