//! Trace (de)serialization: CSV, JSON-lines, and a compact binary format.
//!
//! * **CSV** — human-readable interchange: `t_ms,ue,device,event` with the
//!   paper's mnemonics; good for spreadsheets and diffing.
//! * **JSONL** — one serde-serialized [`TraceRecord`] per line; good for
//!   piping into other tooling.
//! * **Binary** — fixed 14-byte little-endian records behind a magic header;
//!   the format used for large generated traces (a week of 380K UEs is
//!   hundreds of millions of events).

use crate::device::DeviceType;
use crate::event::EventType;
use crate::record::{TraceRecord, UeId};
use crate::time::Timestamp;
use crate::trace::Trace;
use bytes::{Buf, BufMut};
use std::io::{BufRead, Write};

/// Magic bytes opening the binary trace format.
pub const BINARY_MAGIC: &[u8; 8] = b"CPTGBIN1";

/// Errors arising while reading or writing traces.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed CSV line (line number, message).
    Csv(usize, String),
    /// A malformed JSONL line (line number, serde message).
    Json(usize, String),
    /// Binary stream corruption.
    Binary(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Csv(line, msg) => write!(f, "csv parse error at line {line}: {msg}"),
            IoError::Json(line, msg) => write!(f, "jsonl parse error at line {line}: {msg}"),
            IoError::Binary(msg) => write!(f, "binary trace error: {msg}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Write a trace as CSV with a header row.
pub fn write_csv<W: Write>(trace: &Trace, mut w: W) -> Result<(), IoError> {
    writeln!(w, "t_ms,ue,device,event")?;
    for r in trace.iter() {
        writeln!(
            w,
            "{},{},{},{}",
            r.t.as_millis(),
            r.ue.get(),
            r.device.abbrev(),
            r.event.mnemonic()
        )?;
    }
    Ok(())
}

/// Read a trace from CSV produced by [`write_csv`].
pub fn read_csv<R: BufRead>(r: R) -> Result<Trace, IoError> {
    let mut records = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        if lineno == 1 && line.starts_with("t_ms") {
            continue; // header
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let mut field = |name: &str| {
            parts
                .next()
                .ok_or_else(|| IoError::Csv(lineno, format!("missing field `{name}`")))
        };
        let t: u64 = field("t_ms")?
            .trim()
            .parse()
            .map_err(|e| IoError::Csv(lineno, format!("bad t_ms: {e}")))?;
        let ue: u32 = field("ue")?
            .trim()
            .parse()
            .map_err(|e| IoError::Csv(lineno, format!("bad ue: {e}")))?;
        let dev_s = field("device")?.trim().to_string();
        let device = DeviceType::ALL
            .into_iter()
            .find(|d| d.abbrev() == dev_s)
            .ok_or_else(|| IoError::Csv(lineno, format!("unknown device `{dev_s}`")))?;
        let ev_s = field("event")?.trim().to_string();
        let event = EventType::from_mnemonic(&ev_s)
            .ok_or_else(|| IoError::Csv(lineno, format!("unknown event `{ev_s}`")))?;
        records.push(TraceRecord::new(
            Timestamp::from_millis(t),
            UeId(ue),
            device,
            event,
        ));
    }
    Ok(Trace::from_records(records))
}

/// Write a trace as JSON-lines (one [`TraceRecord`] object per line).
pub fn write_jsonl<W: Write>(trace: &Trace, mut w: W) -> Result<(), IoError> {
    for r in trace.iter() {
        let line = serde_json::to_string(r).map_err(|e| IoError::Json(0, e.to_string()))?;
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Read a trace from JSON-lines produced by [`write_jsonl`].
pub fn read_jsonl<R: BufRead>(r: R) -> Result<Trace, IoError> {
    let mut records = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let rec: TraceRecord =
            serde_json::from_str(&line).map_err(|e| IoError::Json(i + 1, e.to_string()))?;
        records.push(rec);
    }
    Ok(Trace::from_records(records))
}

/// Serialize a trace to the compact binary format.
pub fn to_binary(trace: &Trace) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + trace.len() * 14);
    buf.put_slice(BINARY_MAGIC);
    buf.put_u64_le(trace.len() as u64);
    for r in trace.iter() {
        buf.put_u64_le(r.t.as_millis());
        buf.put_u32_le(r.ue.get());
        buf.put_u8(r.device.code());
        buf.put_u8(r.event.code());
    }
    buf
}

/// Deserialize a trace from the compact binary format.
pub fn from_binary(mut data: &[u8]) -> Result<Trace, IoError> {
    if data.len() < 16 {
        return Err(IoError::Binary("truncated header".into()));
    }
    let mut magic = [0u8; 8];
    data.copy_to_slice(&mut magic);
    if &magic != BINARY_MAGIC {
        return Err(IoError::Binary("bad magic".into()));
    }
    let n = data.get_u64_le() as usize;
    if data.remaining() != n * 14 {
        return Err(IoError::Binary(format!(
            "expected {} record bytes, found {}",
            n * 14,
            data.remaining()
        )));
    }
    let mut records = Vec::with_capacity(n);
    for _ in 0..n {
        let t = data.get_u64_le();
        let ue = data.get_u32_le();
        let device = DeviceType::from_code(data.get_u8())
            .ok_or_else(|| IoError::Binary("bad device code".into()))?;
        let event = EventType::from_code(data.get_u8())
            .ok_or_else(|| IoError::Binary("bad event code".into()))?;
        records.push(TraceRecord::new(
            Timestamp::from_millis(t),
            UeId(ue),
            device,
            event,
        ));
    }
    Ok(Trace::from_records(records))
}

/// Incremental writer for the binary format: stream records to any `Write`
/// sink without materializing the trace (pairs with
/// `cn-gen::PopulationStream`). The record count is written on `finish`,
/// so the sink must support seeking — use [`BinaryStreamWriter::new`] on a
/// `File` or an in-memory cursor.
pub struct BinaryStreamWriter<W: Write + std::io::Seek> {
    sink: W,
    count: u64,
}

impl<W: Write + std::io::Seek> BinaryStreamWriter<W> {
    /// Start a binary stream (writes the header with a zero count
    /// placeholder).
    pub fn new(mut sink: W) -> Result<Self, IoError> {
        sink.write_all(BINARY_MAGIC)?;
        sink.write_all(&0u64.to_le_bytes())?;
        Ok(BinaryStreamWriter { sink, count: 0 })
    }

    /// Append one record.
    pub fn write(&mut self, r: &TraceRecord) -> Result<(), IoError> {
        let mut buf = [0u8; 14];
        buf[..8].copy_from_slice(&r.t.as_millis().to_le_bytes());
        buf[8..12].copy_from_slice(&r.ue.get().to_le_bytes());
        buf[12] = r.device.code();
        buf[13] = r.event.code();
        self.sink.write_all(&buf)?;
        self.count += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn written(&self) -> u64 {
        self.count
    }

    /// Finalize: patch the record count into the header and return the
    /// sink.
    pub fn finish(mut self) -> Result<W, IoError> {
        self.sink
            .seek(std::io::SeekFrom::Start(BINARY_MAGIC.len() as u64))?;
        self.sink.write_all(&self.count.to_le_bytes())?;
        self.sink.seek(std::io::SeekFrom::End(0))?;
        self.sink.flush()?;
        Ok(self.sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::from_records(vec![
            TraceRecord::new(
                Timestamp::from_millis(100),
                UeId(1),
                DeviceType::Phone,
                EventType::Attach,
            ),
            TraceRecord::new(
                Timestamp::from_millis(250),
                UeId(2),
                DeviceType::ConnectedCar,
                EventType::Handover,
            ),
            TraceRecord::new(
                Timestamp::from_millis(990),
                UeId(1),
                DeviceType::Phone,
                EventType::Detach,
            ),
        ])
    }

    #[test]
    fn csv_round_trip() {
        let t = sample();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv(&buf[..]).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn csv_rejects_garbage() {
        let bad = b"t_ms,ue,device,event\n12,notanint,P,ATCH\n";
        assert!(matches!(read_csv(&bad[..]), Err(IoError::Csv(2, _))));
        let bad2 = b"t_ms,ue,device,event\n12,1,P,WHAT\n";
        assert!(matches!(read_csv(&bad2[..]), Err(IoError::Csv(2, _))));
        let bad3 = b"t_ms,ue,device,event\n12,1\n";
        assert!(matches!(read_csv(&bad3[..]), Err(IoError::Csv(2, _))));
    }

    #[test]
    fn jsonl_round_trip() {
        let t = sample();
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();
        let back = read_jsonl(&buf[..]).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn binary_round_trip() {
        let t = sample();
        let bin = to_binary(&t);
        let back = from_binary(&bin).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn binary_rejects_corruption() {
        let t = sample();
        let mut bin = to_binary(&t);
        // Truncate.
        bin.pop();
        assert!(matches!(from_binary(&bin), Err(IoError::Binary(_))));
        // Bad magic.
        let mut bin2 = to_binary(&t);
        bin2[0] = b'X';
        assert!(matches!(from_binary(&bin2), Err(IoError::Binary(_))));
        // Bad event code.
        let mut bin3 = to_binary(&t);
        let last = bin3.len() - 1;
        bin3[last] = 99;
        assert!(matches!(from_binary(&bin3), Err(IoError::Binary(_))));
    }

    #[test]
    fn binary_stream_writer_matches_batch() {
        let t = sample();
        let mut cursor = std::io::Cursor::new(Vec::new());
        {
            let mut w = BinaryStreamWriter::new(&mut cursor).unwrap();
            for r in t.iter() {
                w.write(r).unwrap();
            }
            assert_eq!(w.written(), t.len() as u64);
            w.finish().unwrap();
        }
        let bytes = cursor.into_inner();
        assert_eq!(bytes, to_binary(&t));
        assert_eq!(from_binary(&bytes).unwrap(), t);
    }

    #[test]
    fn binary_stream_writer_empty() {
        let cursor = std::io::Cursor::new(Vec::new());
        let w = BinaryStreamWriter::new(cursor).unwrap();
        let bytes = w.finish().unwrap().into_inner();
        assert_eq!(from_binary(&bytes).unwrap(), Trace::new());
    }

    #[test]
    fn empty_trace_round_trips_everywhere() {
        let t = Trace::new();
        let mut csv = Vec::new();
        write_csv(&t, &mut csv).unwrap();
        assert_eq!(read_csv(&csv[..]).unwrap(), t);
        let bin = to_binary(&t);
        assert_eq!(from_binary(&bin).unwrap(), t);
        let mut jl = Vec::new();
        write_jsonl(&t, &mut jl).unwrap();
        assert_eq!(read_jsonl(&jl[..]).unwrap(), t);
    }
}
