//! Trace (de)serialization: CSV, JSON-lines, and a compact binary format.
//!
//! * **CSV** — human-readable interchange: `t_ms,ue,device,event` with the
//!   paper's mnemonics; good for spreadsheets and diffing.
//! * **JSONL** — one serde-serialized [`TraceRecord`] per line; good for
//!   piping into other tooling.
//! * **Binary** — fixed 14-byte little-endian records behind a magic header;
//!   the format used for large generated traces (a week of 380K UEs is
//!   hundreds of millions of events).

use crate::device::DeviceType;
use crate::event::EventType;
use crate::record::{TraceRecord, UeId};
use crate::time::Timestamp;
use crate::trace::Trace;
use bytes::{Buf, BufMut};
use std::io::{BufRead, Write};

/// Magic bytes opening the binary trace format.
pub const BINARY_MAGIC: &[u8; 8] = b"CPTGBIN1";

/// Errors arising while reading or writing traces.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed CSV line (line number, message).
    Csv(usize, String),
    /// A malformed JSONL line (line number, serde message).
    Json(usize, String),
    /// Binary stream corruption.
    Binary(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Csv(line, msg) => write!(f, "csv parse error at line {line}: {msg}"),
            IoError::Json(line, msg) => write!(f, "jsonl parse error at line {line}: {msg}"),
            IoError::Binary(msg) => write!(f, "binary trace error: {msg}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Write a trace as CSV with a header row.
pub fn write_csv<W: Write>(trace: &Trace, mut w: W) -> Result<(), IoError> {
    writeln!(w, "t_ms,ue,device,event")?;
    for r in trace.iter() {
        writeln!(
            w,
            "{},{},{},{}",
            r.t.as_millis(),
            r.ue.get(),
            r.device.abbrev(),
            r.event.mnemonic()
        )?;
    }
    Ok(())
}

/// Read a trace from CSV produced by [`write_csv`].
pub fn read_csv<R: BufRead>(r: R) -> Result<Trace, IoError> {
    let mut records = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        if lineno == 1 && line.starts_with("t_ms") {
            continue; // header
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let mut field = |name: &str| {
            parts
                .next()
                .ok_or_else(|| IoError::Csv(lineno, format!("missing field `{name}`")))
        };
        let t: u64 = field("t_ms")?
            .trim()
            .parse()
            .map_err(|e| IoError::Csv(lineno, format!("bad t_ms: {e}")))?;
        let ue: u32 = field("ue")?
            .trim()
            .parse()
            .map_err(|e| IoError::Csv(lineno, format!("bad ue: {e}")))?;
        let dev_s = field("device")?.trim().to_string();
        let device = DeviceType::ALL
            .into_iter()
            .find(|d| d.abbrev() == dev_s)
            .ok_or_else(|| IoError::Csv(lineno, format!("unknown device `{dev_s}`")))?;
        let ev_s = field("event")?.trim().to_string();
        let event = EventType::from_mnemonic(&ev_s)
            .ok_or_else(|| IoError::Csv(lineno, format!("unknown event `{ev_s}`")))?;
        records.push(TraceRecord::new(
            Timestamp::from_millis(t),
            UeId(ue),
            device,
            event,
        ));
    }
    Ok(Trace::from_records(records))
}

/// Write a trace as JSON-lines (one [`TraceRecord`] object per line).
pub fn write_jsonl<W: Write>(trace: &Trace, mut w: W) -> Result<(), IoError> {
    for r in trace.iter() {
        let line = serde_json::to_string(r).map_err(|e| IoError::Json(0, e.to_string()))?;
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Read a trace from JSON-lines produced by [`write_jsonl`].
pub fn read_jsonl<R: BufRead>(r: R) -> Result<Trace, IoError> {
    let mut records = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let rec: TraceRecord =
            serde_json::from_str(&line).map_err(|e| IoError::Json(i + 1, e.to_string()))?;
        records.push(rec);
    }
    Ok(Trace::from_records(records))
}

/// Serialize a trace to the compact binary format.
pub fn to_binary(trace: &Trace) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + trace.len() * 14);
    buf.put_slice(BINARY_MAGIC);
    buf.put_u64_le(trace.len() as u64);
    for r in trace.iter() {
        buf.put_u64_le(r.t.as_millis());
        buf.put_u32_le(r.ue.get());
        buf.put_u8(r.device.code());
        buf.put_u8(r.event.code());
    }
    buf
}

/// Bytes per binary record: u64 t_ms + u32 ue + u8 device + u8 event.
use crate::block::RECORD_BYTES;

/// Encode one record into its fixed 14-byte little-endian wire frame —
/// the unit both the on-disk binary format and the live streaming
/// protocol (`cn-live`) are built from.
pub fn encode_record(r: &TraceRecord) -> [u8; RECORD_BYTES] {
    let mut buf = [0u8; RECORD_BYTES];
    buf[..8].copy_from_slice(&r.t.as_millis().to_le_bytes());
    buf[8..12].copy_from_slice(&r.ue.get().to_le_bytes());
    buf[12] = r.device.code();
    buf[13] = r.event.code();
    buf
}

/// Decode one 14-byte wire frame produced by [`encode_record`].
///
/// Unknown device/event codes are a typed [`IoError::Binary`] — a frame
/// that is not a record (e.g. a live-stream control marker) must be
/// handled *before* this call, never silently misparsed.
pub fn decode_record(buf: &[u8; RECORD_BYTES]) -> Result<TraceRecord, IoError> {
    let t = u64::from_le_bytes(buf[..8].try_into().expect("8-byte slice"));
    let ue = u32::from_le_bytes(buf[8..12].try_into().expect("4-byte slice"));
    let device = DeviceType::from_code(buf[12])
        .ok_or_else(|| IoError::Binary(format!("bad device code {}", buf[12])))?;
    let event = EventType::from_code(buf[13])
        .ok_or_else(|| IoError::Binary(format!("bad event code {}", buf[13])))?;
    Ok(TraceRecord::new(
        Timestamp::from_millis(t),
        UeId(ue),
        device,
        event,
    ))
}

/// Validate the magic of a binary trace and split off the 16-byte
/// header, returning the (untrusted) stored record count and the record
/// payload.
fn binary_header(mut data: &[u8]) -> Result<(u64, &[u8]), IoError> {
    if data.len() < 16 {
        return Err(IoError::Binary("truncated header".into()));
    }
    let mut magic = [0u8; 8];
    data.copy_to_slice(&mut magic);
    if &magic != BINARY_MAGIC {
        return Err(IoError::Binary("bad magic".into()));
    }
    let count = data.get_u64_le();
    Ok((count, data))
}

/// Parse `n` fixed-size records from `data` (already length-checked).
fn read_records(mut data: &[u8], n: usize) -> Result<Trace, IoError> {
    // Belt and braces for the untrusted-length path: never preallocate
    // more than the payload can actually hold, even if a caller's length
    // check was wrong.
    let mut records = Vec::with_capacity(n.min(data.remaining() / RECORD_BYTES));
    for _ in 0..n {
        let t = data.get_u64_le();
        let ue = data.get_u32_le();
        let device = DeviceType::from_code(data.get_u8())
            .ok_or_else(|| IoError::Binary("bad device code".into()))?;
        let event = EventType::from_code(data.get_u8())
            .ok_or_else(|| IoError::Binary("bad event code".into()))?;
        records.push(TraceRecord::new(
            Timestamp::from_millis(t),
            UeId(ue),
            device,
            event,
        ));
    }
    Ok(Trace::from_records(records))
}

/// Deserialize a trace from the compact binary format.
///
/// The header's record count is **untrusted input**: it is range-checked
/// with `usize::try_from` + `checked_mul` before any arithmetic or
/// allocation, so a crafted count can neither wrap the length check (on
/// release builds without overflow checks, `n * 14` used to be able to
/// alias a small payload length) nor drive `Vec::with_capacity` into an
/// allocation-abort.
pub fn from_binary(data: &[u8]) -> Result<Trace, IoError> {
    let (count, payload) = binary_header(data)?;
    let n = usize::try_from(count)
        .map_err(|_| IoError::Binary(format!("record count {count} exceeds address space")))?;
    let expected = n
        .checked_mul(RECORD_BYTES)
        .ok_or_else(|| IoError::Binary(format!("record count {count} overflows payload size")))?;
    if payload.len() != expected {
        return Err(IoError::Binary(format!(
            "expected {expected} record bytes, found {}",
            payload.len()
        )));
    }
    read_records(payload, n)
}

/// Recover a trace from a binary stream whose header count was never
/// patched — the on-disk state a crashed [`BinaryStreamWriter`] leaves
/// behind (see its finish-or-recover contract). The record count is
/// derived from the payload length instead of the header; the payload
/// must be whole records (`len % 14 == 0`), so a write torn mid-record is
/// still rejected rather than misparsed.
///
/// `recover_binary` accepts any stored count (it ignores it), so it also
/// reads complete traces; prefer [`from_binary`] whenever the writer
/// `finish`ed, since the count cross-check there detects more corruption.
pub fn recover_binary(data: &[u8]) -> Result<Trace, IoError> {
    let (_stored_count, payload) = binary_header(data)?;
    if payload.len() % RECORD_BYTES != 0 {
        return Err(IoError::Binary(format!(
            "payload of {} bytes is not whole {RECORD_BYTES}-byte records \
             (torn trailing write?)",
            payload.len()
        )));
    }
    read_records(payload, payload.len() / RECORD_BYTES)
}

/// Incremental writer for the binary format: stream records to any `Write`
/// sink without materializing the trace (pairs with
/// `cn-gen::PopulationStream`). The record count is written on `finish`,
/// so the sink must support seeking — use [`BinaryStreamWriter::new`] on a
/// `File` or an in-memory cursor.
///
/// ### The finish-or-recover contract
///
/// The header is written with a **zero count placeholder** that only
/// [`BinaryStreamWriter::finish`] patches to the true count. An export
/// that is dropped without `finish` — a crash, a panicked generator, an
/// early return on a [`IoError::Io`] from the sink — therefore leaves a
/// file that [`from_binary`] *rejects* (count `0`, payload non-empty):
/// a partial trace can never be mistaken for a complete one. The records
/// that did reach the sink are still salvageable with [`recover_binary`],
/// which derives the count from the payload length instead. In short:
///
/// * clean export → `finish()?` → read with [`from_binary`];
/// * crashed export → file fails [`from_binary`] loudly → salvage the
///   prefix, explicitly, with [`recover_binary`].
pub struct BinaryStreamWriter<W: Write + std::io::Seek> {
    sink: W,
    count: u64,
}

impl<W: Write + std::io::Seek> BinaryStreamWriter<W> {
    /// Start a binary stream (writes the header with a zero count
    /// placeholder).
    pub fn new(mut sink: W) -> Result<Self, IoError> {
        sink.write_all(BINARY_MAGIC)?;
        sink.write_all(&0u64.to_le_bytes())?;
        Ok(BinaryStreamWriter { sink, count: 0 })
    }

    /// Append one record.
    pub fn write(&mut self, r: &TraceRecord) -> Result<(), IoError> {
        self.sink.write_all(&encode_record(r))?;
        self.count += 1;
        Ok(())
    }

    /// Append pre-encoded records verbatim — the zero-copy export path.
    ///
    /// `bytes` must be whole 14-byte records in the binary layout (an
    /// [`crate::block::EncodedBlock`] payload or a whole-record slice of
    /// one); a length that tears a record is rejected as
    /// [`IoError::Binary`] before anything reaches the sink. No
    /// per-record re-encode happens here: the block was laid out in disk
    /// format at generation time and is copied through as-is.
    pub fn write_encoded(&mut self, bytes: &[u8]) -> Result<(), IoError> {
        if !bytes.len().is_multiple_of(RECORD_BYTES) {
            return Err(IoError::Binary(format!(
                "encoded block of {} bytes is not whole {RECORD_BYTES}-byte records",
                bytes.len()
            )));
        }
        self.sink.write_all(bytes)?;
        self.count += (bytes.len() / RECORD_BYTES) as u64;
        Ok(())
    }

    /// Append an [`crate::block::EncodedBlock`] verbatim (see
    /// [`BinaryStreamWriter::write_encoded`]).
    pub fn write_block(&mut self, block: &crate::block::EncodedBlock) -> Result<(), IoError> {
        self.write_encoded(block.as_bytes())
    }

    /// Records written so far.
    pub fn written(&self) -> u64 {
        self.count
    }

    /// Abandon the export and take back the sink **without** patching the
    /// header count: the bytes written so far deliberately fail
    /// [`from_binary`] and are only readable via [`recover_binary`] (see
    /// the finish-or-recover contract). Use after a [`write`] error to
    /// inspect or salvage the partial output.
    ///
    /// [`write`]: BinaryStreamWriter::write
    pub fn into_sink(self) -> W {
        self.sink
    }

    /// Finalize: patch the record count into the header and return the
    /// sink.
    pub fn finish(mut self) -> Result<W, IoError> {
        self.sink
            .seek(std::io::SeekFrom::Start(BINARY_MAGIC.len() as u64))?;
        self.sink.write_all(&self.count.to_le_bytes())?;
        self.sink.seek(std::io::SeekFrom::End(0))?;
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// **Test support** — a `Write`/`Seek` adapter that fails with an I/O
/// error after `budget` bytes have been written: the sink leg of the
/// deterministic fault-injection harness (`cn_gen::fault` holds the
/// worker legs). Lets tests prove that a mid-export disk failure
/// propagates as a typed [`IoError::Io`] — and that the partial file the
/// failure leaves behind obeys the finish-or-recover contract above.
pub struct FailingWriter<W> {
    inner: W,
    budget: usize,
}

impl<W> FailingWriter<W> {
    /// Wrap `inner`, allowing exactly `budget` bytes before every write
    /// fails.
    pub fn new(inner: W, budget: usize) -> FailingWriter<W> {
        FailingWriter { inner, budget }
    }

    /// The wrapped sink (with whatever bytes made it through).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FailingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if buf.len() > self.budget {
            return Err(std::io::Error::other(format!(
                "injected fault: write budget exhausted ({} bytes left, {} requested)",
                self.budget,
                buf.len()
            )));
        }
        let written = self.inner.write(buf)?;
        self.budget -= written.min(self.budget);
        Ok(written)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

impl<W: std::io::Seek> std::io::Seek for FailingWriter<W> {
    fn seek(&mut self, pos: std::io::SeekFrom) -> std::io::Result<u64> {
        self.inner.seek(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::from_records(vec![
            TraceRecord::new(
                Timestamp::from_millis(100),
                UeId(1),
                DeviceType::Phone,
                EventType::Attach,
            ),
            TraceRecord::new(
                Timestamp::from_millis(250),
                UeId(2),
                DeviceType::ConnectedCar,
                EventType::Handover,
            ),
            TraceRecord::new(
                Timestamp::from_millis(990),
                UeId(1),
                DeviceType::Phone,
                EventType::Detach,
            ),
        ])
    }

    #[test]
    fn csv_round_trip() {
        let t = sample();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv(&buf[..]).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn csv_rejects_garbage() {
        let bad = b"t_ms,ue,device,event\n12,notanint,P,ATCH\n";
        assert!(matches!(read_csv(&bad[..]), Err(IoError::Csv(2, _))));
        let bad2 = b"t_ms,ue,device,event\n12,1,P,WHAT\n";
        assert!(matches!(read_csv(&bad2[..]), Err(IoError::Csv(2, _))));
        let bad3 = b"t_ms,ue,device,event\n12,1\n";
        assert!(matches!(read_csv(&bad3[..]), Err(IoError::Csv(2, _))));
    }

    #[test]
    fn jsonl_round_trip() {
        let t = sample();
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();
        let back = read_jsonl(&buf[..]).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn record_frame_round_trips_and_rejects_bad_codes() {
        for r in sample().iter() {
            let frame = encode_record(r);
            assert_eq!(decode_record(&frame).unwrap(), *r);
        }
        let mut frame = encode_record(sample().iter().next().unwrap());
        frame[12] = 0xFF;
        assert!(matches!(decode_record(&frame), Err(IoError::Binary(_))));
        frame[12] = DeviceType::Phone.code();
        frame[13] = 0xFE;
        assert!(matches!(decode_record(&frame), Err(IoError::Binary(_))));
    }

    #[test]
    fn binary_round_trip() {
        let t = sample();
        let bin = to_binary(&t);
        let back = from_binary(&bin).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn binary_rejects_corruption() {
        let t = sample();
        let mut bin = to_binary(&t);
        // Truncate.
        bin.pop();
        assert!(matches!(from_binary(&bin), Err(IoError::Binary(_))));
        // Bad magic.
        let mut bin2 = to_binary(&t);
        bin2[0] = b'X';
        assert!(matches!(from_binary(&bin2), Err(IoError::Binary(_))));
        // Bad event code.
        let mut bin3 = to_binary(&t);
        let last = bin3.len() - 1;
        bin3[last] = 99;
        assert!(matches!(from_binary(&bin3), Err(IoError::Binary(_))));
    }

    #[test]
    fn binary_stream_writer_matches_batch() {
        let t = sample();
        let mut cursor = std::io::Cursor::new(Vec::new());
        {
            let mut w = BinaryStreamWriter::new(&mut cursor).unwrap();
            for r in t.iter() {
                w.write(r).unwrap();
            }
            assert_eq!(w.written(), t.len() as u64);
            w.finish().unwrap();
        }
        let bytes = cursor.into_inner();
        assert_eq!(bytes, to_binary(&t));
        assert_eq!(from_binary(&bytes).unwrap(), t);
    }

    #[test]
    fn binary_stream_writer_empty() {
        let cursor = std::io::Cursor::new(Vec::new());
        let w = BinaryStreamWriter::new(cursor).unwrap();
        let bytes = w.finish().unwrap().into_inner();
        assert_eq!(from_binary(&bytes).unwrap(), Trace::new());
    }

    #[test]
    fn crafted_header_counts_error_instead_of_aborting() {
        // Regression: `n as usize` truncated on 32-bit and `n * 14` could
        // wrap in release builds, so a crafted count could pass the
        // length check and drive Vec::with_capacity into an abort. Every
        // hostile count must now produce a typed error.
        let t = sample();
        let good = to_binary(&t);
        let hostile_counts: [u64; 5] = [
            u64::MAX,
            // Wraps `n * 14` to 2 (mod 2^64): 2^64 = 14 * q + 2.
            (u64::MAX / 14) + 1,
            u64::MAX / 14,
            (1 << 62) + 3,
            // Plausible but absurd: claims more records than bytes exist.
            1 << 40,
        ];
        for count in hostile_counts {
            let mut bin = good.clone();
            bin[8..16].copy_from_slice(&count.to_le_bytes());
            let err = from_binary(&bin).expect_err(&format!("count {count} must be rejected"));
            assert!(matches!(err, IoError::Binary(_)), "{err}");
        }
        // And a count that is simply wrong (but small) still errors.
        let mut bin = good;
        bin[8..16].copy_from_slice(&2u64.to_le_bytes());
        assert!(matches!(from_binary(&bin), Err(IoError::Binary(_))));
    }

    #[test]
    fn recover_binary_salvages_a_drop_without_finish() {
        // A crashed export: records written, header count never patched.
        let t = sample();
        let mut cursor = std::io::Cursor::new(Vec::new());
        {
            let mut w = BinaryStreamWriter::new(&mut cursor).unwrap();
            for r in t.iter() {
                w.write(r).unwrap();
            }
            // no finish(): the zero-count placeholder stays
        }
        let bytes = cursor.into_inner();
        // from_binary must reject it — a partial export may never pose as
        // a complete trace…
        assert!(matches!(from_binary(&bytes), Err(IoError::Binary(_))));
        // …but the recover path salvages every record that hit the sink.
        assert_eq!(recover_binary(&bytes).unwrap(), t);
    }

    #[test]
    fn recover_binary_rejects_torn_trailing_writes() {
        let t = sample();
        let mut bin = to_binary(&t);
        bin.truncate(bin.len() - 5); // mid-record tear
        assert!(matches!(recover_binary(&bin), Err(IoError::Binary(_))));
        // Bad magic is rejected before any payload math.
        let mut bad = to_binary(&t);
        bad[0] = b'X';
        assert!(matches!(recover_binary(&bad), Err(IoError::Binary(_))));
        // Too short for even a header.
        assert!(matches!(
            recover_binary(&bad[..10]),
            Err(IoError::Binary(_))
        ));
    }

    #[test]
    fn recover_binary_also_reads_finished_traces() {
        let t = sample();
        assert_eq!(recover_binary(&to_binary(&t)).unwrap(), t);
        assert_eq!(
            recover_binary(&to_binary(&Trace::new())).unwrap(),
            Trace::new()
        );
    }

    #[test]
    fn failing_writer_surfaces_sink_errors_as_typed_io_errors() {
        let t = sample();
        // Budget for the header plus one and a half records: the second
        // record's write must fail with IoError::Io, not panic or truncate
        // silently.
        let sink = FailingWriter::new(std::io::Cursor::new(Vec::new()), 16 + 21);
        let mut w = BinaryStreamWriter::new(sink).unwrap();
        let records: Vec<_> = t.iter().collect();
        w.write(records[0]).unwrap();
        let err = w.write(records[1]).expect_err("budget exhausted");
        assert!(matches!(err, IoError::Io(_)), "{err}");
        // What did reach the sink obeys the finish-or-recover contract.
        let bytes = w.into_sink().into_inner().into_inner();
        assert!(matches!(from_binary(&bytes), Err(IoError::Binary(_))));
        let salvaged = recover_binary(&bytes).unwrap();
        assert_eq!(salvaged.len(), 1);
        assert_eq!(salvaged.iter().next(), Some(records[0]));
    }

    #[test]
    fn empty_trace_round_trips_everywhere() {
        let t = Trace::new();
        let mut csv = Vec::new();
        write_csv(&t, &mut csv).unwrap();
        assert_eq!(read_csv(&csv[..]).unwrap(), t);
        let bin = to_binary(&t);
        assert_eq!(from_binary(&bin).unwrap(), t);
        let mut jl = Vec::new();
        write_jsonl(&t, &mut jl).unwrap();
        assert_eq!(read_jsonl(&jl[..]).unwrap(), t);
    }
}
