//! Count time series over traces.
//!
//! Several analyses (variance–time plots, diurnal profiles, monitoring
//! sampling studies) start by binning events into fixed windows. This
//! module provides those binnings once, with explicit edge semantics:
//! windows are half-open `[start + k·w, start + (k+1)·w)` and the last
//! partial window is included.

use crate::device::DeviceType;
use crate::event::EventType;
use crate::time::Timestamp;
use crate::trace::Trace;

/// Events per fixed window over `[start, end)`.
///
/// Returns an empty vector when the range or window is degenerate.
pub fn count_series(trace: &Trace, start: Timestamp, end: Timestamp, window_ms: u64) -> Vec<u32> {
    if window_ms == 0 || end <= start {
        return Vec::new();
    }
    let span = end.since(start);
    let n = span.div_ceil(window_ms) as usize;
    let mut bins = vec![0u32; n];
    for r in trace.iter() {
        if r.t >= start && r.t < end {
            bins[(r.t.since(start) / window_ms) as usize] += 1;
        }
    }
    bins
}

/// Event counts per hour-of-day (pooled across days), optionally filtered
/// by device and/or event type.
pub fn hour_of_day_profile(
    trace: &Trace,
    device: Option<DeviceType>,
    event: Option<EventType>,
) -> [u64; 24] {
    let mut profile = [0u64; 24];
    for r in trace.iter() {
        if device.is_some_and(|d| d != r.device) {
            continue;
        }
        if event.is_some_and(|e| e != r.event) {
            continue;
        }
        profile[r.t.hour_of_day().index()] += 1;
    }
    profile
}

/// Event timestamps (ms) of one event type, in trace order — the point
/// process handed to variance–time / Hurst analyses.
pub fn event_times(trace: &Trace, device: Option<DeviceType>, event: EventType) -> Vec<u64> {
    trace
        .iter()
        .filter(|r| r.event == event && device.is_none_or(|d| d == r.device))
        .map(|r| r.t.as_millis())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{TraceRecord, UeId};
    use crate::time::MS_PER_HOUR;

    fn rec(t: u64, d: DeviceType, e: EventType) -> TraceRecord {
        TraceRecord::new(Timestamp::from_millis(t), UeId(0), d, e)
    }

    fn sample() -> Trace {
        Trace::from_records(vec![
            rec(0, DeviceType::Phone, EventType::ServiceRequest),
            rec(500, DeviceType::Phone, EventType::S1ConnRelease),
            rec(1_000, DeviceType::Tablet, EventType::ServiceRequest),
            rec(2_500, DeviceType::Phone, EventType::Tau),
            rec(
                MS_PER_HOUR + 10,
                DeviceType::Phone,
                EventType::ServiceRequest,
            ),
        ])
    }

    #[test]
    fn count_series_bins_half_open() {
        let t = sample();
        let bins = count_series(
            &t,
            Timestamp::from_millis(0),
            Timestamp::from_millis(3_000),
            1_000,
        );
        assert_eq!(bins, vec![2, 1, 1]);
        // Partial last window included.
        let bins = count_series(
            &t,
            Timestamp::from_millis(0),
            Timestamp::from_millis(2_600),
            1_000,
        );
        assert_eq!(bins, vec![2, 1, 1]);
    }

    #[test]
    fn count_series_degenerate() {
        let t = sample();
        assert!(
            count_series(&t, Timestamp::from_millis(5), Timestamp::from_millis(5), 10).is_empty()
        );
        assert!(
            count_series(&t, Timestamp::from_millis(0), Timestamp::from_millis(10), 0).is_empty()
        );
    }

    #[test]
    fn hourly_profile_filters() {
        let t = sample();
        let all = hour_of_day_profile(&t, None, None);
        assert_eq!(all[0], 4);
        assert_eq!(all[1], 1);
        let phones_srv =
            hour_of_day_profile(&t, Some(DeviceType::Phone), Some(EventType::ServiceRequest));
        assert_eq!(phones_srv[0], 1);
        assert_eq!(phones_srv[1], 1);
    }

    #[test]
    fn event_times_extracts_points() {
        let t = sample();
        let srv = event_times(&t, None, EventType::ServiceRequest);
        assert_eq!(srv, vec![0, 1_000, MS_PER_HOUR + 10]);
        let phone_srv = event_times(&t, Some(DeviceType::Phone), EventType::ServiceRequest);
        assert_eq!(phone_srv, vec![0, MS_PER_HOUR + 10]);
    }
}
