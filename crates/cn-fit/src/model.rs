//! The fitted model set: one Semi-Markov model per (cluster, hour, device).

use crate::first_event::FirstEventModel;
use crate::method::Method;
use crate::semi_markov::SemiMarkovModel;
use cn_cluster::ClusterId;
use cn_statemachine::{BottomTransition, TlState, TopTransition};
use cn_stats::dist::Dist;
use cn_trace::{DeviceType, HourOfDay};
use serde::{Deserialize, Serialize};

/// The model of one (cluster, hour, device) combination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterHourModel {
    /// Top-level (EMM–ECM) Semi-Markov model.
    pub top: SemiMarkovModel<TopTransition>,
    /// Second-level Semi-Markov model (empty for EMM–ECM methods).
    pub bottom: SemiMarkovModel<BottomTransition>,
    /// Per bottom-capable state: the probability that a visit produces *no*
    /// second-level event before the next top-level move (estimated from
    /// censored visits during replay). The generator arms its second-level
    /// timer only with probability `1 − p`; without this competing-risks
    /// correction the two-level model floods the trace with HO/TAU.
    pub bottom_exit: Vec<(TlState, f64)>,
    /// `HO` inter-arrival law for EMM–ECM methods (the baseline's overlaid
    /// Poisson process); `None` for two-level methods.
    pub ho_interarrival: Option<Dist>,
    /// `TAU` inter-arrival law for EMM–ECM methods.
    pub tau_interarrival: Option<Dist>,
    /// First-event model for traces starting in this hour.
    pub first_event: FirstEventModel,
    /// Number of UEs that contributed to this model.
    pub n_ues: usize,
}

impl ClusterHourModel {
    /// A model with no information (silent cluster-hour).
    pub fn empty() -> ClusterHourModel {
        ClusterHourModel {
            top: SemiMarkovModel::default(),
            bottom: SemiMarkovModel::default(),
            bottom_exit: Vec::new(),
            ho_interarrival: None,
            tau_interarrival: None,
            first_event: FirstEventModel::empty(),
            n_ues: 0,
        }
    }

    /// True when the model carries no transition information at all.
    pub fn is_empty(&self) -> bool {
        self.top.is_empty() && self.bottom.is_empty() && self.first_event.is_empty()
    }

    /// Probability that a visit to `state` produces no second-level event
    /// (`None` when the state was never observed in this cluster-hour).
    pub fn exit_prob(&self, state: TlState) -> Option<f64> {
        self.bottom_exit
            .iter()
            .find(|(s, _)| *s == state)
            .map(|(_, p)| *p)
    }
}

/// The 24 hourly model slots of one device type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HourModels {
    /// Per-cluster models, indexed by [`ClusterId`].
    pub clusters: Vec<ClusterHourModel>,
}

impl HourModels {
    /// The model of a cluster, falling back to an empty model for unknown
    /// ids (robustness against persona/cluster mismatches).
    pub fn cluster(&self, id: ClusterId) -> &ClusterHourModel {
        static EMPTY: std::sync::OnceLock<ClusterHourModel> = std::sync::OnceLock::new();
        self.clusters
            .get(id.index())
            .unwrap_or_else(|| EMPTY.get_or_init(ClusterHourModel::empty))
    }
}

/// All models of one device type, plus the persona table that ties a
/// modeled UE to its cluster in every hour (§7: generators are distributed
/// over clusters "according to the distribution of the UEs in the modeled
/// trace"; sampling a persona row reproduces exactly that distribution
/// while keeping a UE's cluster trajectory consistent across hours).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceModels {
    /// The device type.
    pub device: DeviceType,
    /// One row per modeled UE: its cluster in each of the 24 hours.
    pub personas: Vec<[ClusterId; 24]>,
    /// The 24 hourly model slots.
    pub hours: Vec<HourModels>,
}

impl DeviceModels {
    /// Models for one hour-of-day.
    pub fn hour(&self, hour: HourOfDay) -> &HourModels {
        &self.hours[hour.index()]
    }

    /// Total number of distinct cluster-hour models.
    pub fn model_count(&self) -> usize {
        self.hours.iter().map(|h| h.clusters.len()).sum()
    }
}

/// A complete fitted model: the paper's "20,216 two-level
/// state-machine-based Semi-Markov models" artifact, at our scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSet {
    /// The method that produced this model (Table 3).
    pub method: Method,
    /// Per-device models, indexed by [`DeviceType::code`].
    pub devices: Vec<DeviceModels>,
    /// Days spanned by the modeled trace (used for per-day feature scaling).
    pub n_days: u64,
}

impl ModelSet {
    /// Models of one device type.
    pub fn device(&self, device: DeviceType) -> &DeviceModels {
        &self.devices[device.code() as usize]
    }

    /// Total number of instantiated cluster-hour models across devices.
    pub fn model_count(&self) -> usize {
        self.devices.iter().map(DeviceModels::model_count).sum()
    }

    /// Serialize to JSON (model snapshot).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Load from a JSON snapshot.
    pub fn from_json(json: &str) -> serde_json::Result<ModelSet> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_model_is_empty() {
        let m = ClusterHourModel::empty();
        assert!(m.is_empty());
        assert_eq!(m.n_ues, 0);
    }

    #[test]
    fn hour_models_fallback_for_unknown_cluster() {
        let h = HourModels { clusters: vec![] };
        assert!(h.cluster(ClusterId(99)).is_empty());
    }
}
