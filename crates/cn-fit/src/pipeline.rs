//! The end-to-end fitting pipeline: trace → [`ModelSet`].

use crate::first_event::FirstEventModel;
use crate::method::{Method, StateMachineKind};
use crate::model::{ClusterHourModel, DeviceModels, HourModels, ModelSet};
use crate::semi_markov::{fit_sojourn, SemiMarkovModel};
use crate::sojourn::UeObservations;
use cn_cluster::{ClusterId, Clustering, ClusteringParams};
use cn_statemachine::{BottomTransition, TlState, TopTransition};
use cn_trace::{DeviceType, HourOfDay, Trace, MS_PER_DAY};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of a fitting run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FitConfig {
    /// Which Table 3 method to fit.
    pub method: Method,
    /// Clustering thresholds (θ_f, θ_n); ignored by unclustered methods.
    pub clustering: ClusteringParams,
    /// Days spanned by the trace; `0` = infer from the last timestamp.
    pub n_days: u64,
    /// Worker threads for the replay pass (`0` = all cores).
    pub threads: usize,
}

impl FitConfig {
    /// Default configuration for a method (paper thresholds).
    pub fn new(method: Method) -> FitConfig {
        FitConfig {
            method,
            clustering: ClusteringParams::default(),
            n_days: 0,
            threads: 0,
        }
    }
}

/// Fit a model set to a trace (§5).
///
/// ```
/// use cn_fit::{fit, FitConfig, Method};
/// use cn_trace::PopulationMix;
/// use cn_world::{generate_world, WorldConfig};
/// let world = generate_world(&WorldConfig::new(PopulationMix::new(15, 5, 3), 1.0, 7));
/// let models = fit(&world, &FitConfig::new(Method::Ours));
/// assert_eq!(models.devices.len(), 3);
/// assert!(cn_fit::inspect::verify(&models).is_empty());
/// ```
pub fn fit(trace: &Trace, config: &FitConfig) -> ModelSet {
    let n_days = if config.n_days > 0 {
        config.n_days
    } else {
        trace.end().map_or(1, |t| t.as_millis() / MS_PER_DAY + 1)
    };

    let observations = observe_all(trace, config.threads);

    let devices = DeviceType::ALL
        .into_iter()
        .map(|device| {
            let device_obs: Vec<&UeObservations> =
                observations.iter().filter(|o| o.device == device).collect();
            fit_device(device, &device_obs, config, n_days)
        })
        .collect();

    ModelSet {
        method: config.method,
        devices,
        n_days,
    }
}

/// Replay and observe every UE, in parallel.
fn observe_all(trace: &Trace, threads: usize) -> Vec<UeObservations> {
    let per_ue = trace.per_ue();
    let entries: Vec<_> = per_ue.iter().collect();
    if entries.is_empty() {
        return Vec::new();
    }
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
    } else {
        threads
    }
    .min(entries.len())
    .max(1);
    let chunk = entries.len().div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = entries
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(move |_| {
                    slice
                        .iter()
                        .map(|(ue, events)| {
                            let device = events.first().map_or(DeviceType::Phone, |r| r.device);
                            UeObservations::observe(*ue, device, events)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("observer panicked"))
            .collect()
    })
    .expect("scope panicked")
}

/// Fit all 24 hour slots of one device type.
fn fit_device(
    device: DeviceType,
    obs: &[&UeObservations],
    config: &FitConfig,
    n_days: u64,
) -> DeviceModels {
    let mut personas = vec![[ClusterId(0); 24]; obs.len()];
    let mut hours = Vec::with_capacity(24);
    if obs.is_empty() {
        for _ in 0..24 {
            hours.push(HourModels {
                clusters: Vec::new(),
            });
        }
        return DeviceModels {
            device,
            personas,
            hours,
        };
    }

    for hour in HourOfDay::all() {
        let clustering = if config.method.clustered() {
            let features: Vec<Vec<f64>> = obs
                .iter()
                .map(|o| o.features_for_hour(hour, n_days))
                .collect();
            cn_cluster::cluster(&features, &config.clustering)
        } else {
            // A single cluster holding every UE.
            single_cluster(obs.len())
        };
        for (i, &c) in clustering.assignments.iter().enumerate() {
            personas[i][hour.index()] = c;
        }
        let clusters = clustering
            .clusters
            .iter()
            .map(|info| fit_cluster_hour(obs, &info.members, hour, config, n_days))
            .collect();
        hours.push(HourModels { clusters });
    }

    DeviceModels {
        device,
        personas,
        hours,
    }
}

fn single_cluster(n: usize) -> Clustering {
    let members: Vec<usize> = (0..n).collect();
    Clustering {
        assignments: vec![ClusterId(0); n],
        clusters: vec![cn_cluster::ClusterInfo {
            id: ClusterId(0),
            members,
            feature_min: Vec::new(),
            feature_max: Vec::new(),
        }],
    }
}

/// Fit the model of one (cluster, hour) from its member UEs' observations.
fn fit_cluster_hour(
    obs: &[&UeObservations],
    members: &[usize],
    hour: HourOfDay,
    config: &FitConfig,
    n_days: u64,
) -> ClusterHourModel {
    let h = hour.index();
    let dist_kind = config.method.distribution();

    // Pool sojourn samples across member UEs (events of different UEs are
    // i.i.d. within a cluster, §4.1.1).
    let mut top: HashMap<TopTransition, Vec<f64>> = HashMap::new();
    let mut bottom: HashMap<BottomTransition, Vec<f64>> = HashMap::new();
    let mut censored: HashMap<TlState, usize> = HashMap::new();
    let mut ho_gaps: Vec<f64> = Vec::new();
    let mut tau_gaps: Vec<f64> = Vec::new();
    let mut firsts: Vec<(cn_trace::EventType, f64)> = Vec::new();
    let mut active_obs = 0usize;

    for &m in members {
        let o = obs[m];
        for (&t, s) in &o.top_by_hour[h] {
            top.entry(t).or_default().extend_from_slice(s);
        }
        if config.method.machine() == StateMachineKind::TwoLevel {
            for (&t, s) in &o.bottom_by_hour[h] {
                bottom.entry(t).or_default().extend_from_slice(s);
            }
            for (&s, &n) in &o.bottom_censored_by_hour[h] {
                *censored.entry(s).or_insert(0) += n;
            }
        } else {
            ho_gaps.extend_from_slice(&o.ho_gaps_by_hour[h]);
            tau_gaps.extend_from_slice(&o.tau_gaps_by_hour[h]);
        }
        for ((_, fh), &(e, off)) in &o.first_by_day_hour {
            if *fh == hour.get() {
                firsts.push((e, off));
                active_obs += 1;
            }
        }
    }

    let idle_obs = (members.len() * n_days as usize).saturating_sub(active_obs);
    let (ho_ia, tau_ia) = if config.method.machine() == StateMachineKind::EmmEcm {
        (
            (!ho_gaps.is_empty()).then(|| fit_sojourn(&ho_gaps, dist_kind)),
            (!tau_gaps.is_empty()).then(|| fit_sojourn(&tau_gaps, dist_kind)),
        )
    } else {
        (None, None)
    };

    // Competing-risks correction: P(no second-level event | visit) per
    // bottom-capable state = censored visits / all completed visits.
    let mut fired: HashMap<TlState, usize> = HashMap::new();
    for (t, s) in &bottom {
        use crate::semi_markov::TransitionLike;
        *fired.entry(t.from_state()).or_insert(0) += s.len();
    }
    let mut bottom_exit: Vec<(TlState, f64)> = censored
        .keys()
        .chain(fired.keys())
        .copied()
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .map(|s| {
            let c = *censored.get(&s).unwrap_or(&0) as f64;
            let f = *fired.get(&s).unwrap_or(&0) as f64;
            (s, c / (c + f).max(1.0))
        })
        .collect();
    bottom_exit.sort_by_key(|(s, _)| *s);

    ClusterHourModel {
        top: SemiMarkovModel::fit(&top, dist_kind),
        bottom: SemiMarkovModel::fit(&bottom, dist_kind),
        bottom_exit,
        ho_interarrival: ho_ia,
        tau_interarrival: tau_ia,
        first_event: FirstEventModel::fit(&firsts, idle_obs),
        n_ues: members.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_trace::PopulationMix;
    use cn_world::{generate_world, WorldConfig};

    fn small_world() -> Trace {
        generate_world(&WorldConfig::new(PopulationMix::new(30, 15, 10), 2.0, 11))
    }

    #[test]
    fn fit_produces_models_for_all_devices_and_hours() {
        let trace = small_world();
        let set = fit(&trace, &FitConfig::new(Method::Ours));
        assert_eq!(set.devices.len(), 3);
        assert_eq!(set.n_days, 2);
        for device in DeviceType::ALL {
            let dm = set.device(device);
            assert_eq!(dm.hours.len(), 24);
            assert!(dm.model_count() >= 24, "{device}");
            // Busy daytime hours must have usable models.
            let noon = dm.hour(HourOfDay(12));
            assert!(
                noon.clusters.iter().any(|c| !c.top.is_empty()),
                "{device}: no top model at noon"
            );
        }
    }

    #[test]
    fn ours_uses_ecdf_b2_uses_poisson() {
        use cn_stats::dist::Dist;
        let trace = small_world();
        let ours = fit(&trace, &FitConfig::new(Method::Ours));
        let b2 = fit(&trace, &FitConfig::new(Method::B2));
        let check = |set: &ModelSet, want_exp: bool| {
            let dm = set.device(DeviceType::Phone);
            let mut seen = false;
            for hm in &dm.hours {
                for c in &hm.clusters {
                    for t in TopTransition::ALL {
                        if let Some(d) = c.top.sojourn(t) {
                            seen = true;
                            match (want_exp, d) {
                                (true, Dist::Exponential(_)) | (false, Dist::Empirical(_)) => {}
                                // Degenerate Poisson fits legitimately fall
                                // back to ECDF.
                                (true, Dist::Empirical(e)) => {
                                    assert!(e.max() <= 0.0, "non-degenerate fallback")
                                }
                                (want, d) => panic!("want_exp={want}, got {}", d.family()),
                            }
                        }
                    }
                }
            }
            assert!(seen, "no sojourn models at all");
        };
        check(&ours, false);
        check(&b2, true);
    }

    #[test]
    fn emm_ecm_methods_have_interarrival_models_not_bottom() {
        let trace = small_world();
        let base = fit(&trace, &FitConfig::new(Method::Base));
        let dm = base.device(DeviceType::ConnectedCar);
        let mut saw_ho = false;
        for hm in &dm.hours {
            // Base: exactly one cluster per hour.
            assert_eq!(hm.clusters.len(), 1);
            let c = &hm.clusters[0];
            assert!(c.bottom.is_empty());
            saw_ho |= c.ho_interarrival.is_some();
        }
        assert!(saw_ho, "cars never produced HO gaps");
    }

    #[test]
    fn two_level_methods_have_bottom_models_not_interarrival() {
        let trace = small_world();
        let ours = fit(&trace, &FitConfig::new(Method::Ours));
        let dm = ours.device(DeviceType::ConnectedCar);
        let mut saw_bottom = false;
        for hm in &dm.hours {
            for c in &hm.clusters {
                assert!(c.ho_interarrival.is_none());
                assert!(c.tau_interarrival.is_none());
                saw_bottom |= !c.bottom.is_empty();
            }
        }
        assert!(saw_bottom, "cars never produced second-level transitions");
    }

    #[test]
    fn personas_reference_valid_clusters() {
        let trace = small_world();
        let set = fit(&trace, &FitConfig::new(Method::Ours));
        for dm in &set.devices {
            for row in &dm.personas {
                for (h, &c) in row.iter().enumerate() {
                    assert!(
                        c.index() < dm.hours[h].clusters.len(),
                        "{:?} hour {h}: persona cluster {c} out of range",
                        dm.device
                    );
                }
            }
        }
    }

    #[test]
    fn clustered_methods_split_more_than_one_cluster_somewhere() {
        let trace = small_world();
        let mut config = FitConfig::new(Method::Ours);
        // Small θ_n so our small population can still split.
        config.clustering.theta_n = 5;
        let set = fit(&trace, &config);
        let dm = set.device(DeviceType::Phone);
        let max_clusters = dm.hours.iter().map(|h| h.clusters.len()).max().unwrap();
        assert!(max_clusters > 1, "no hour split at all");
    }

    #[test]
    fn empty_trace_fits_empty_models() {
        let set = fit(&Trace::new(), &FitConfig::new(Method::Ours));
        assert_eq!(set.model_count(), 0);
        for dm in &set.devices {
            assert!(dm.personas.is_empty());
        }
    }

    #[test]
    fn model_set_json_round_trip() {
        let trace = generate_world(&WorldConfig::new(PopulationMix::new(5, 2, 2), 1.0, 3));
        let set = fit(&trace, &FitConfig::new(Method::Ours));
        // Exact f64 round-tripping needs serde_json's `float_roundtrip`
        // feature (enabled workspace-wide); with it, deep equality holds.
        let json = set.to_json().unwrap();
        let back = ModelSet::from_json(&json).unwrap();
        assert_eq!(set, back);
    }
}
