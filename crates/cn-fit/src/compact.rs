//! Model compaction: bounded-size snapshots.
//!
//! The paper's fitted artifact is ~20K Semi-Markov models; with empirical
//! CDFs storing every observed sojourn, a carrier-scale snapshot reaches
//! gigabytes. Compaction replaces each stored ECDF with an evenly-spaced
//! quantile subsample of at most `max_samples` points. The substituted
//! law's K–S distance to the original is at most ~`1/max_samples`, so
//! generation fidelity degrades gracefully and measurably.

use crate::model::ModelSet;
use crate::semi_markov::{SemiMarkovModel, TransitionLike};
use cn_stats::dist::Dist;
use cn_stats::Ecdf;

/// Subsample an ECDF to at most `max_samples` evenly-spaced quantiles
/// (returns the input when it is already small enough).
pub fn compact_ecdf(ecdf: &Ecdf, max_samples: usize) -> Ecdf {
    let max_samples = max_samples.max(2);
    if ecdf.len() <= max_samples {
        return ecdf.clone();
    }
    let samples: Vec<f64> = (0..max_samples)
        .map(|i| {
            // Include both extremes so min/max survive compaction.
            let p = i as f64 / (max_samples - 1) as f64;
            ecdf.quantile(p)
        })
        .collect();
    Ecdf::new(samples).expect("quantiles of a valid ECDF are valid")
}

fn compact_dist(d: &Dist, max_samples: usize) -> Dist {
    match d {
        Dist::Empirical(e) => Dist::Empirical(compact_ecdf(e, max_samples)),
        other => other.clone(),
    }
}

fn compact_semi_markov<T: TransitionLike>(
    m: &SemiMarkovModel<T>,
    max_samples: usize,
) -> SemiMarkovModel<T> {
    m.map_branches(|b| {
        let mut b = b.clone();
        b.sojourn = compact_dist(&b.sojourn, max_samples);
        Some(b)
    })
}

/// Compact every empirical law in a model set to at most `max_samples`
/// points (sojourn CDFs, inter-arrival laws, first-event offsets).
pub fn compact_model_set(set: &ModelSet, max_samples: usize) -> ModelSet {
    let mut out = set.clone();
    for dm in &mut out.devices {
        for hm in &mut dm.hours {
            for c in &mut hm.clusters {
                c.top = compact_semi_markov(&c.top, max_samples);
                c.bottom = compact_semi_markov(&c.bottom, max_samples);
                if let Some(d) = &c.ho_interarrival {
                    c.ho_interarrival = Some(compact_dist(d, max_samples));
                }
                if let Some(d) = &c.tau_interarrival {
                    c.tau_interarrival = Some(compact_dist(d, max_samples));
                }
                if let Some(e) = &c.first_event.offset_secs {
                    c.first_event.offset_secs = Some(compact_ecdf(e, max_samples));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fit, FitConfig, Method};
    use cn_trace::PopulationMix;
    use cn_world::{generate_world, WorldConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn compacted_ecdf_is_close_and_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| rng.gen::<f64>().powi(3) * 500.0)
            .collect();
        let full = Ecdf::new(samples).unwrap();
        let small = compact_ecdf(&full, 100);
        assert_eq!(small.len(), 100);
        assert_eq!(small.min(), full.min());
        assert_eq!(small.max(), full.max());
        let d = full.max_y_distance(&small);
        assert!(d < 0.02, "K–S distance {d}");
    }

    #[test]
    fn small_ecdfs_pass_through() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(compact_ecdf(&e, 100), e);
    }

    #[test]
    fn compacted_models_verify_and_shrink() {
        let world = generate_world(&WorldConfig::new(PopulationMix::new(60, 25, 15), 2.0, 9));
        let set = fit(&world, &FitConfig::new(Method::Ours));
        let compacted = compact_model_set(&set, 64);
        assert!(crate::inspect::verify(&compacted).is_empty());
        let full_size = set.to_json().unwrap().len();
        let small_size = compacted.to_json().unwrap().len();
        assert!(
            small_size * 2 < full_size,
            "compaction saved too little: {small_size} vs {full_size}"
        );
    }
}
