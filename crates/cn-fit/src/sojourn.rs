//! Per-UE observation extraction.
//!
//! One replay pass per UE produces everything the fitting pipeline needs:
//! per-hour-of-day sojourn samples for top- and second-level transitions
//! (pooled across days, §4.1.1), per-hour `HO`/`TAU` inter-arrival gaps
//! (for the EMM–ECM baseline methods), per-(day, hour) first events
//! (§5.4), per-hour event counts, and the paper's four clustering features.

use cn_statemachine::{replay_ue, BottomTransition, TlState, TopTransition};
use cn_stats::summary::std_dev;
use cn_trace::{DeviceType, EventType, HourOfDay, TraceRecord, UeId, MS_PER_SEC};
use std::collections::HashMap;

/// Everything observed about one UE, bucketed by hour-of-day.
#[derive(Debug, Clone)]
pub struct UeObservations {
    /// The UE.
    pub ue: UeId,
    /// Its device type.
    pub device: DeviceType,
    /// Top-level sojourn samples (seconds), by hour of state entry.
    pub top_by_hour: Vec<HashMap<TopTransition, Vec<f64>>>,
    /// Second-level sojourn samples (seconds), by hour of state entry.
    pub bottom_by_hour: Vec<HashMap<BottomTransition, Vec<f64>>>,
    /// Bottom-state visits ending with no second-level transition
    /// (censored by a top-level move), by hour of state entry.
    pub bottom_censored_by_hour: Vec<HashMap<TlState, usize>>,
    /// Gaps between consecutive `HO` events *within the same (day, hour)
    /// window* (seconds), bucketed by hour-of-day — the paper's §4.1.1
    /// preprocessing observes inter-arrival times per 1-hour interval, so
    /// gaps spanning interval boundaries are never seen; the EMM–ECM
    /// baselines fit these (burst-dominated) gaps as Poisson arrivals,
    /// which is precisely what makes them flood the trace with HO.
    pub ho_gaps_by_hour: Vec<Vec<f64>>,
    /// Same for `TAU`.
    pub tau_gaps_by_hour: Vec<Vec<f64>>,
    /// First event and offset-in-hour (seconds) per (day, hour) window that
    /// had any events.
    pub first_by_day_hour: HashMap<(u64, u8), (EventType, f64)>,
    /// Event counts per hour-of-day × event type, summed over days.
    pub counts_by_hour: [[u32; 6]; 24],
}

impl UeObservations {
    /// Extract observations from one UE's time-sorted events.
    pub fn observe(ue: UeId, device: DeviceType, events: &[TraceRecord]) -> UeObservations {
        let outcome = replay_ue(events);
        let mut obs = UeObservations {
            ue,
            device,
            top_by_hour: vec![HashMap::new(); 24],
            bottom_by_hour: vec![HashMap::new(); 24],
            bottom_censored_by_hour: vec![HashMap::new(); 24],
            ho_gaps_by_hour: vec![Vec::new(); 24],
            tau_gaps_by_hour: vec![Vec::new(); 24],
            first_by_day_hour: HashMap::new(),
            counts_by_hour: [[0; 6]; 24],
        };
        for s in &outcome.top_sojourns {
            let h = s.enter.hour_of_day().index();
            obs.top_by_hour[h]
                .entry(s.transition)
                .or_default()
                .push(s.duration_ms as f64 / MS_PER_SEC as f64);
        }
        for s in &outcome.bottom_sojourns {
            let h = s.enter.hour_of_day().index();
            obs.bottom_by_hour[h]
                .entry(s.transition)
                .or_default()
                .push(s.duration_ms as f64 / MS_PER_SEC as f64);
        }
        for &(state, enter) in &outcome.bottom_censored {
            let h = enter.hour_of_day().index();
            *obs.bottom_censored_by_hour[h].entry(state).or_insert(0) += 1;
        }
        let mut last_ho: Option<cn_trace::Timestamp> = None;
        let mut last_tau: Option<cn_trace::Timestamp> = None;
        let window = |t: cn_trace::Timestamp| (t.day(), t.hour_of_day().get());
        for r in events {
            let h = r.t.hour_of_day().index();
            obs.counts_by_hour[h][r.event.code() as usize] += 1;
            let key = window(r.t);
            obs.first_by_day_hour
                .entry(key)
                .or_insert_with(|| (r.event, r.t.offset_in_hour() as f64 / MS_PER_SEC as f64));
            match r.event {
                EventType::Handover => {
                    if let Some(prev) = last_ho {
                        if window(prev) == key {
                            obs.ho_gaps_by_hour[h].push(r.t.since(prev) as f64 / MS_PER_SEC as f64);
                        }
                    }
                    last_ho = Some(r.t);
                }
                EventType::Tau => {
                    if let Some(prev) = last_tau {
                        if window(prev) == key {
                            obs.tau_gaps_by_hour[h]
                                .push(r.t.since(prev) as f64 / MS_PER_SEC as f64);
                        }
                    }
                    last_tau = Some(r.t);
                }
                _ => {}
            }
        }
        obs
    }

    /// The paper's four clustering features for one hour-of-day (§5.3):
    /// `[srv_req count/day, std(CONNECTED sojourn), s1_conn_rel count/day,
    /// std(IDLE sojourn)]`.
    pub fn features_for_hour(&self, hour: HourOfDay, n_days: u64) -> Vec<f64> {
        let h = hour.index();
        let days = n_days.max(1) as f64;
        let srv = f64::from(self.counts_by_hour[h][EventType::ServiceRequest.code() as usize]);
        let rel = f64::from(self.counts_by_hour[h][EventType::S1ConnRelease.code() as usize]);
        let conn: Vec<f64> = [TopTransition::ConnToIdle, TopTransition::ConnToDereg]
            .iter()
            .flat_map(|t| self.top_by_hour[h].get(t).into_iter().flatten().copied())
            .collect();
        let idle: Vec<f64> = [TopTransition::IdleToConn, TopTransition::IdleToDereg]
            .iter()
            .flat_map(|t| self.top_by_hour[h].get(t).into_iter().flatten().copied())
            .collect();
        vec![srv / days, std_dev(&conn), rel / days, std_dev(&idle)]
    }

    /// Total events in a given hour-of-day (across days).
    pub fn events_in_hour(&self, hour: HourOfDay) -> u32 {
        self.counts_by_hour[hour.index()].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_trace::{Timestamp, MS_PER_HOUR};

    fn rec(t_ms: u64, e: EventType) -> TraceRecord {
        TraceRecord::new(Timestamp::from_millis(t_ms), UeId(0), DeviceType::Phone, e)
    }

    #[test]
    fn empty_stream_gives_empty_observations() {
        let obs = UeObservations::observe(UeId(0), DeviceType::Phone, &[]);
        assert!(obs.first_by_day_hour.is_empty());
        assert_eq!(obs.events_in_hour(HourOfDay(0)), 0);
        assert_eq!(obs.features_for_hour(HourOfDay(0), 1), vec![0.0; 4]);
    }

    #[test]
    fn sojourns_bucketed_by_entry_hour() {
        use EventType::*;
        // Attach at 00:30, release at 01:10 → CONNECTED sojourn of 2400 s
        // assigned to hour 0 (entry time).
        let events = vec![
            rec(MS_PER_HOUR / 2, Attach),
            rec(MS_PER_HOUR + 10 * 60 * 1000, S1ConnRelease),
        ];
        let obs = UeObservations::observe(UeId(0), DeviceType::Phone, &events);
        let h0 = &obs.top_by_hour[0];
        let conn = h0.get(&TopTransition::ConnToIdle).unwrap();
        assert_eq!(conn.len(), 1);
        assert!((conn[0] - 2_400.0).abs() < 1e-9);
        assert!(obs.top_by_hour[1].is_empty());
    }

    #[test]
    fn first_events_per_day_hour() {
        use EventType::*;
        let events = vec![
            rec(1_000, ServiceRequest),
            rec(2_000, S1ConnRelease),
            rec(MS_PER_HOUR + 500, ServiceRequest),
            rec(24 * MS_PER_HOUR + 42_000, Tau),
        ];
        let obs = UeObservations::observe(UeId(0), DeviceType::Phone, &events);
        assert_eq!(
            obs.first_by_day_hour.get(&(0, 0)),
            Some(&(ServiceRequest, 1.0))
        );
        assert_eq!(
            obs.first_by_day_hour.get(&(0, 1)),
            Some(&(ServiceRequest, 0.5))
        );
        assert_eq!(obs.first_by_day_hour.get(&(1, 0)), Some(&(Tau, 42.0)));
        assert_eq!(obs.first_by_day_hour.len(), 3);
    }

    #[test]
    fn ho_gaps_are_window_local() {
        use EventType::*;
        let events = vec![
            rec(1_000, ServiceRequest),
            rec(10_000, Handover),
            rec(250_000, Handover),              // same hour 0: gap of 240 s
            rec(MS_PER_HOUR + 5_000, Handover),  // next hour: gap discarded
            rec(MS_PER_HOUR + 90_000, Handover), // hour 1: gap of 85 s
        ];
        let obs = UeObservations::observe(UeId(0), DeviceType::Phone, &events);
        assert_eq!(obs.ho_gaps_by_hour[0], vec![240.0]);
        // The cross-boundary gap is never observed (§4.1.1 preprocessing).
        assert_eq!(obs.ho_gaps_by_hour[1], vec![85.0]);
    }

    #[test]
    fn features_scale_by_days() {
        use EventType::*;
        let events = vec![
            rec(1_000, ServiceRequest),
            rec(5_000, S1ConnRelease),
            rec(24 * MS_PER_HOUR + 1_000, ServiceRequest),
            rec(24 * MS_PER_HOUR + 9_000, S1ConnRelease),
        ];
        let obs = UeObservations::observe(UeId(0), DeviceType::Phone, &events);
        let f = obs.features_for_hour(HourOfDay(0), 2);
        assert!((f[0] - 1.0).abs() < 1e-12, "srv/day {}", f[0]);
        assert!((f[2] - 1.0).abs() < 1e-12);
        // Two CONNECTED sojourns (4 s and 8 s) → std = 2.
        assert!((f[1] - 2.0).abs() < 1e-9, "conn std {}", f[1]);
    }
}
