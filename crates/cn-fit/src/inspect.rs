//! Model inspection: what did the fit actually learn?
//!
//! The paper reports its fitted artifact as "20,216 two-level
//! state-machine-based Semi-Markov models" (§5.3). This module produces
//! the equivalent inventory for any [`ModelSet`] — cluster counts per
//! hour, sample coverage, transition-probability summaries — for sanity
//! checking, debugging, and documentation.

use crate::method::StateMachineKind;
use crate::model::ModelSet;
use crate::semi_markov::TransitionLike;
use cn_statemachine::{BottomTransition, TopTransition};
use cn_trace::{DeviceType, HourOfDay};
use serde::{Deserialize, Serialize};

/// Inventory of one fitted model set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelInventory {
    /// Method name.
    pub method: String,
    /// Total cluster-hour models.
    pub total_models: usize,
    /// Models that carry no information at all.
    pub empty_models: usize,
    /// Per device: mean clusters per hour.
    pub mean_clusters_per_hour: [f64; 3],
    /// Per device: modeled UEs (persona rows).
    pub modeled_ues: [usize; 3],
    /// Fraction of cluster-hours with a usable top-level model.
    pub top_coverage: f64,
    /// Fraction of cluster-hours with a usable second-level model
    /// (0 for EMM–ECM methods).
    pub bottom_coverage: f64,
    /// Fraction of cluster-hours with a first-event model.
    pub first_event_coverage: f64,
    /// Mean transition probability of `IDLE → CONNECTED` where present
    /// (how session-dominated the modeled idle departures are).
    pub mean_idle_to_conn_prob: f64,
}

/// Build the inventory of a model set.
pub fn inventory(set: &ModelSet) -> ModelInventory {
    let mut total = 0usize;
    let mut empty = 0usize;
    let mut top_ok = 0usize;
    let mut bottom_ok = 0usize;
    let mut fe_ok = 0usize;
    let mut idle_probs: Vec<f64> = Vec::new();
    let mut mean_clusters = [0f64; 3];
    let mut modeled = [0usize; 3];

    for device in DeviceType::ALL {
        let dm = set.device(device);
        modeled[device.code() as usize] = dm.personas.len();
        let mut clusters = 0usize;
        for hour in HourOfDay::all() {
            let hm = dm.hour(hour);
            clusters += hm.clusters.len();
            for c in &hm.clusters {
                total += 1;
                if c.is_empty() {
                    empty += 1;
                }
                if !c.top.is_empty() {
                    top_ok += 1;
                }
                if !c.bottom.is_empty() {
                    bottom_ok += 1;
                }
                if !c.first_event.is_empty() {
                    fe_ok += 1;
                }
                let p = c.top.prob(TopTransition::IdleToConn);
                if p > 0.0 {
                    idle_probs.push(p);
                }
            }
        }
        mean_clusters[device.code() as usize] = clusters as f64 / 24.0;
    }

    let frac = |n: usize| {
        if total == 0 {
            0.0
        } else {
            n as f64 / total as f64
        }
    };
    ModelInventory {
        method: set.method.name().to_string(),
        total_models: total,
        empty_models: empty,
        mean_clusters_per_hour: mean_clusters,
        modeled_ues: modeled,
        top_coverage: frac(top_ok),
        bottom_coverage: frac(bottom_ok),
        first_event_coverage: frac(fe_ok),
        mean_idle_to_conn_prob: if idle_probs.is_empty() {
            0.0
        } else {
            idle_probs.iter().sum::<f64>() / idle_probs.len() as f64
        },
    }
}

/// Consistency problems detectable in a fitted model set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModelDefect {
    /// A state's branch probabilities do not sum to ~1.
    UnnormalizedBranches {
        /// Device the defect is in.
        device: DeviceType,
        /// Hour of the defective model.
        hour: u8,
        /// Cluster index within the hour.
        cluster: usize,
        /// The offending probability sum.
        sum: f64,
    },
    /// An exit probability is outside [0, 1].
    BadExitProb {
        /// Device the defect is in.
        device: DeviceType,
        /// Hour of the defective model.
        hour: u8,
        /// The offending value.
        value: f64,
    },
    /// A persona row references a cluster id that does not exist.
    DanglingPersona {
        /// Device the defect is in.
        device: DeviceType,
        /// Hour at which the reference dangles.
        hour: u8,
    },
}

/// Verify the structural invariants of a fitted model set.
pub fn verify(set: &ModelSet) -> Vec<ModelDefect> {
    let mut defects = Vec::new();
    for device in DeviceType::ALL {
        let dm = set.device(device);
        for hour in HourOfDay::all() {
            let hm = dm.hour(hour);
            for (ci, c) in hm.clusters.iter().enumerate() {
                for state in c.top.states() {
                    let sum: f64 = c.top.outgoing(state).iter().map(|b| b.prob).sum();
                    if (sum - 1.0).abs() > 1e-6 {
                        defects.push(ModelDefect::UnnormalizedBranches {
                            device,
                            hour: hour.get(),
                            cluster: ci,
                            sum,
                        });
                    }
                }
                for state in c.bottom.states() {
                    let sum: f64 = c.bottom.outgoing(state).iter().map(|b| b.prob).sum();
                    if (sum - 1.0).abs() > 1e-6 {
                        defects.push(ModelDefect::UnnormalizedBranches {
                            device,
                            hour: hour.get(),
                            cluster: ci,
                            sum,
                        });
                    }
                }
                for &(_, p) in &c.bottom_exit {
                    if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                        defects.push(ModelDefect::BadExitProb {
                            device,
                            hour: hour.get(),
                            value: p,
                        });
                    }
                }
            }
        }
        for row in &dm.personas {
            for (h, c) in row.iter().enumerate() {
                if c.index() >= dm.hours[h].clusters.len() {
                    defects.push(ModelDefect::DanglingPersona {
                        device,
                        hour: h as u8,
                    });
                }
            }
        }
    }
    defects
}

/// Whether the model set's machine kind matches its contents (EMM–ECM sets
/// must not carry second-level models, and vice versa for inter-arrival
/// overlays).
pub fn machine_consistent(set: &ModelSet) -> bool {
    let two_level = set.method.machine() == StateMachineKind::TwoLevel;
    set.devices.iter().all(|dm| {
        dm.hours.iter().all(|hm| {
            hm.clusters.iter().all(|c| {
                if two_level {
                    c.ho_interarrival.is_none() && c.tau_interarrival.is_none()
                } else {
                    c.bottom.is_empty()
                        && BottomTransition::all()
                            .iter()
                            .all(|t| c.bottom.sojourn(*t).is_none())
                }
            })
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fit, FitConfig, Method};
    use cn_trace::{PopulationMix, Trace};
    use cn_world::{generate_world, WorldConfig};

    fn small() -> Trace {
        generate_world(&WorldConfig::new(PopulationMix::new(30, 12, 8), 1.0, 19))
    }

    #[test]
    fn inventory_counts_are_sane() {
        let set = fit(&small(), &FitConfig::new(Method::Ours));
        let inv = inventory(&set);
        assert_eq!(inv.method, "Ours");
        assert!(inv.total_models >= 72, "{}", inv.total_models);
        assert!(inv.top_coverage > 0.3, "{}", inv.top_coverage);
        assert!(inv.first_event_coverage > 0.3);
        assert!(
            inv.mean_idle_to_conn_prob > 0.5,
            "{}",
            inv.mean_idle_to_conn_prob
        );
        assert_eq!(inv.modeled_ues, [30, 12, 8]);
    }

    #[test]
    fn fitted_models_verify_clean() {
        for method in Method::ALL {
            let set = fit(&small(), &FitConfig::new(method));
            assert!(
                verify(&set).is_empty(),
                "{method}: {:?}",
                verify(&set).first()
            );
            assert!(machine_consistent(&set), "{method}");
        }
    }

    #[test]
    fn verify_catches_corruption() {
        let mut set = fit(&small(), &FitConfig::new(Method::Ours));
        // Corrupt an exit probability.
        let dm = &mut set.devices[0];
        'outer: for hm in &mut dm.hours {
            for c in &mut hm.clusters {
                if let Some(first) = c.bottom_exit.first_mut() {
                    first.1 = 1.5;
                    break 'outer;
                }
            }
        }
        let defects = verify(&set);
        assert!(
            defects
                .iter()
                .any(|d| matches!(d, ModelDefect::BadExitProb { .. })),
            "{defects:?}"
        );
    }
}
