//! The paper's method matrix (Table 3).

use serde::{Deserialize, Serialize};

/// Which state machine a method drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StateMachineKind {
    /// The merged top-level EMM–ECM machine only; `HO`/`TAU` are modeled as
    /// independent inter-arrival processes overlaid on the UE (and thus can
    /// fire in the wrong ECM state).
    EmmEcm,
    /// The full two-level hierarchical machine of Fig. 5.
    TwoLevel,
}

/// How sojourn/inter-arrival laws are modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DistributionKind {
    /// MLE-fitted exponential (Poisson process).
    Poisson,
    /// The empirical CDF of the observed samples (the paper's choice).
    EmpiricalCdf,
}

/// A modeling method from the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// EMM–ECM machine + Poisson, no clustering.
    Base,
    /// EMM–ECM machine + Poisson, with clustering.
    B1,
    /// Two-level machine + Poisson, with clustering.
    B2,
    /// Two-level machine + empirical CDFs, with clustering (the paper's
    /// proposed model).
    Ours,
}

impl Method {
    /// All four methods in Table 3 column order.
    pub const ALL: [Method; 4] = [Method::Base, Method::B1, Method::B2, Method::Ours];

    /// The state machine the method uses.
    pub fn machine(self) -> StateMachineKind {
        match self {
            Method::Base | Method::B1 => StateMachineKind::EmmEcm,
            Method::B2 | Method::Ours => StateMachineKind::TwoLevel,
        }
    }

    /// The sojourn-law family the method fits.
    pub fn distribution(self) -> DistributionKind {
        match self {
            Method::Base | Method::B1 | Method::B2 => DistributionKind::Poisson,
            Method::Ours => DistributionKind::EmpiricalCdf,
        }
    }

    /// Whether the method clusters UEs.
    pub fn clustered(self) -> bool {
        !matches!(self, Method::Base)
    }

    /// Table 3 display name.
    pub fn name(self) -> &'static str {
        match self {
            Method::Base => "Base",
            Method::B1 => "B1",
            Method::B2 => "B2",
            Method::Ours => "Ours",
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_matrix() {
        use DistributionKind::*;
        use StateMachineKind::*;
        assert_eq!(Method::Base.machine(), EmmEcm);
        assert_eq!(Method::B1.machine(), EmmEcm);
        assert_eq!(Method::B2.machine(), TwoLevel);
        assert_eq!(Method::Ours.machine(), TwoLevel);
        assert_eq!(Method::Base.distribution(), Poisson);
        assert_eq!(Method::B1.distribution(), Poisson);
        assert_eq!(Method::B2.distribution(), Poisson);
        assert_eq!(Method::Ours.distribution(), EmpiricalCdf);
        assert!(!Method::Base.clustered());
        assert!(Method::B1.clustered());
        assert!(Method::B2.clustered());
        assert!(Method::Ours.clustered());
    }
}
