//! The first-event model (§5.4).
//!
//! To synthesize a trace starting at hour `H`, each per-UE generator first
//! needs an initial event and its start time. The paper derives, per
//! (cluster, hour, device-type), the probability of each event type being a
//! UE's first event of the hour and the distribution of its offset within
//! the hour.

use cn_stats::ecdf::Ecdf;
use cn_trace::EventType;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// First event type + start-offset model for one (cluster, hour, device).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FirstEventModel {
    /// `(event, probability)` of each observed first-event type; empty when
    /// no UE of this cluster produced any event in this hour (the generator
    /// then stays silent until a later hour provides a model).
    pub events: Vec<(EventType, f64)>,
    /// Distribution of the first event's offset within the hour, seconds
    /// in `[0, 3600)`; `None` iff `events` is empty.
    pub offset_secs: Option<Ecdf>,
    /// Fraction of (UE, day) observations of this cluster-hour that had at
    /// least one event — the generator's probability of being active at all
    /// in this hour when it starts here.
    pub active_prob: f64,
}

impl FirstEventModel {
    /// An empty model (never-active cluster-hour).
    pub fn empty() -> FirstEventModel {
        FirstEventModel {
            events: Vec::new(),
            offset_secs: None,
            active_prob: 0.0,
        }
    }

    /// Estimate from observations: `firsts` holds one `(event, offset_secs)`
    /// per (UE, day) that had events in the hour; `idle_observations` counts
    /// the (UE, day) pairs with no events.
    pub fn fit(firsts: &[(EventType, f64)], idle_observations: usize) -> FirstEventModel {
        if firsts.is_empty() {
            return FirstEventModel::empty();
        }
        let mut counts = [0usize; 6];
        for &(e, _) in firsts {
            counts[e.code() as usize] += 1;
        }
        let n = firsts.len();
        let events: Vec<(EventType, f64)> = EventType::ALL
            .into_iter()
            .filter(|e| counts[e.code() as usize] > 0)
            .map(|e| (e, counts[e.code() as usize] as f64 / n as f64))
            .collect();
        let offsets: Vec<f64> = firsts
            .iter()
            .map(|&(_, o)| o.clamp(0.0, 3_599.999))
            .collect();
        let total_obs = n + idle_observations;
        FirstEventModel {
            events,
            offset_secs: Ecdf::new(offsets),
            active_prob: n as f64 / total_obs as f64,
        }
    }

    /// True when the model carries no first-event information.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Sample a first event and offset (seconds within the hour);
    /// `None` for an empty model or when the activity Bernoulli decides the
    /// UE is silent this hour.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<(EventType, f64)> {
        let ecdf = self.offset_secs.as_ref()?;
        if rng.gen::<f64>() >= self.active_prob {
            return None;
        }
        let mut pick = rng.gen::<f64>();
        let mut chosen = self.events.last()?.0;
        for &(e, p) in &self.events {
            pick -= p;
            if pick <= 0.0 {
                chosen = e;
                break;
            }
        }
        Some((chosen, ecdf.sample(rng)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_model_samples_none() {
        let m = FirstEventModel::empty();
        assert!(m.is_empty());
        let mut rng = StdRng::seed_from_u64(1);
        assert!(m.sample(&mut rng).is_none());
    }

    #[test]
    fn probabilities_normalize() {
        let firsts = vec![
            (EventType::ServiceRequest, 10.0),
            (EventType::ServiceRequest, 20.0),
            (EventType::Tau, 30.0),
        ];
        let m = FirstEventModel::fit(&firsts, 1);
        let total: f64 = m.events.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((m.active_prob - 0.75).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_mix() {
        let mut firsts = vec![(EventType::ServiceRequest, 100.0); 80];
        firsts.extend(vec![(EventType::Tau, 200.0); 20]);
        let m = FirstEventModel::fit(&firsts, 0);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let mut srv = 0;
        let mut drew = 0;
        for _ in 0..n {
            if let Some((e, off)) = m.sample(&mut rng) {
                drew += 1;
                // Event type and offset are modeled independently (§5.4
                // derives the two distributions separately).
                assert!(off == 100.0 || off == 200.0);
                if e == EventType::ServiceRequest {
                    srv += 1;
                }
            }
        }
        assert_eq!(drew, n); // active_prob = 1
        let frac = srv as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.02, "{frac}");
    }

    #[test]
    fn inactive_hours_sample_silence() {
        let firsts = vec![(EventType::ServiceRequest, 10.0)];
        let m = FirstEventModel::fit(&firsts, 9); // active 10% of observations
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let active = (0..n).filter(|_| m.sample(&mut rng).is_some()).count();
        let frac = active as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.02, "{frac}");
    }

    #[test]
    fn offsets_clamped_into_hour() {
        let firsts = vec![(EventType::Tau, 4_000.0), (EventType::Tau, -5.0)];
        let m = FirstEventModel::fit(&firsts, 0);
        let e = m.offset_secs.as_ref().unwrap();
        assert!(e.max() < 3_600.0);
        assert!(e.min() >= 0.0);
    }
}
