//! The Semi-Markov model over a state machine (§5.2).
//!
//! Given a state machine's legal transitions, the Semi-Markov model attaches
//! to each transition `x → y` a probability `p_xy` (estimated from
//! transition counts) and a sojourn law `F_xy(t)` (the time spent in `x`
//! before taking the transition — estimated as an empirical CDF or an
//! MLE-fitted parametric model). Unlike a Markov chain it makes *no*
//! exponential assumption about sojourn times, which §4 shows is essential
//! for control-plane traffic.

use cn_stats::dist::Dist;
use cn_stats::ecdf::Ecdf;
use cn_stats::Exponential;
use cn_trace::EventType;
use rand::Rng;
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::Hash;

use crate::method::DistributionKind;

/// A transition of some state machine: source/destination states and the
/// triggering event. Implemented by `TopTransition` and `BottomTransition`.
pub trait TransitionLike:
    Copy + Eq + Hash + Ord + std::fmt::Debug + Serialize + DeserializeOwned
{
    /// The machine's state type.
    type State: Copy + Eq + Hash + Ord + std::fmt::Debug + Serialize + DeserializeOwned;

    /// Source state.
    #[allow(clippy::wrong_self_convention)]
    fn from_state(self) -> Self::State;
    /// Destination state.
    fn to_state(self) -> Self::State;
    /// Triggering event.
    fn trigger(self) -> EventType;
    /// All legal transitions of the machine.
    fn all() -> &'static [Self];
}

impl TransitionLike for cn_statemachine::TopTransition {
    type State = cn_statemachine::TopState;

    fn from_state(self) -> Self::State {
        self.from()
    }
    fn to_state(self) -> Self::State {
        self.to()
    }
    fn trigger(self) -> EventType {
        self.event()
    }
    fn all() -> &'static [Self] {
        &cn_statemachine::TopTransition::ALL
    }
}

impl TransitionLike for cn_statemachine::BottomTransition {
    type State = cn_statemachine::TlState;

    fn from_state(self) -> Self::State {
        self.from()
    }
    fn to_state(self) -> Self::State {
        self.to()
    }
    fn trigger(self) -> EventType {
        self.event()
    }
    fn all() -> &'static [Self] {
        &cn_statemachine::BottomTransition::ALL
    }
}

/// One outgoing branch of a state in the Semi-Markov model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(bound(serialize = "T: Serialize", deserialize = "T: DeserializeOwned"))]
pub struct Branch<T> {
    /// The transition this branch takes.
    pub transition: T,
    /// Probability of taking this branch when leaving the state.
    pub prob: f64,
    /// Sojourn-time law (seconds spent in the source state).
    pub sojourn: Dist,
}

/// A fitted Semi-Markov model over transition type `T`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(bound = "")]
pub struct SemiMarkovModel<T: TransitionLike> {
    /// Outgoing branches per source state, probabilities summing to 1 for
    /// each state that has any.
    branches: Vec<(T::State, Vec<Branch<T>>)>,
}

impl<T: TransitionLike> Default for SemiMarkovModel<T> {
    fn default() -> Self {
        SemiMarkovModel {
            branches: Vec::new(),
        }
    }
}

impl<T: TransitionLike> SemiMarkovModel<T> {
    /// Estimate the model from per-transition sojourn samples (seconds).
    ///
    /// `p_xy` is the fraction of observed departures from `x` that took
    /// transition `x → y`; the sojourn law is fitted per `kind`. Transitions
    /// with no samples are omitted; samples that cannot be fitted (e.g. all
    /// zero for Poisson) fall back to the empirical CDF.
    pub fn fit(samples: &HashMap<T, Vec<f64>>, kind: DistributionKind) -> SemiMarkovModel<T> {
        let mut by_state: HashMap<T::State, Vec<(T, &Vec<f64>)>> = HashMap::new();
        for (&t, s) in samples {
            if !s.is_empty() {
                by_state.entry(t.from_state()).or_default().push((t, s));
            }
        }
        let mut branches: Vec<(T::State, Vec<Branch<T>>)> = Vec::new();
        for (state, mut outs) in by_state {
            outs.sort_by_key(|(t, _)| *t);
            let total: usize = outs.iter().map(|(_, s)| s.len()).sum();
            let bs: Vec<Branch<T>> = outs
                .into_iter()
                .map(|(t, s)| Branch {
                    transition: t,
                    prob: s.len() as f64 / total as f64,
                    sojourn: fit_sojourn(s, kind),
                })
                .collect();
            branches.push((state, bs));
        }
        branches.sort_by_key(|(s, _)| *s);
        SemiMarkovModel { branches }
    }

    /// Outgoing branches of a state (empty slice when unobserved).
    pub fn outgoing(&self, state: T::State) -> &[Branch<T>] {
        self.branches
            .binary_search_by_key(&state, |(s, _)| *s)
            .map(|i| self.branches[i].1.as_slice())
            .unwrap_or(&[])
    }

    /// All states that have at least one outgoing branch.
    pub fn states(&self) -> impl Iterator<Item = T::State> + '_ {
        self.branches.iter().map(|(s, _)| *s)
    }

    /// Every fitted branch of the model, flattened across states — the
    /// enumeration a validation harness walks to compare each transition's
    /// probability and sojourn law against a re-fitted model.
    pub fn branches(&self) -> impl Iterator<Item = &Branch<T>> {
        self.branches.iter().flat_map(|(_, bs)| bs.iter())
    }

    /// True if the model has no branches at all.
    pub fn is_empty(&self) -> bool {
        self.branches.is_empty()
    }

    /// Sample the next transition and sojourn time (seconds) from `state`.
    /// Returns `None` when the state has no observed departures.
    pub fn sample_next<R: Rng + ?Sized>(&self, state: T::State, rng: &mut R) -> Option<(T, f64)> {
        let outs = self.outgoing(state);
        if outs.is_empty() {
            return None;
        }
        let mut pick = rng.gen::<f64>();
        for b in outs {
            pick -= b.prob;
            if pick <= 0.0 {
                return Some((b.transition, b.sojourn.sample(rng).max(0.0)));
            }
        }
        let b = outs.last().expect("non-empty");
        Some((b.transition, b.sojourn.sample(rng).max(0.0)))
    }

    /// Rebuild the model by transforming every branch: `f` returns the
    /// branch to keep (its `prob` is treated as an unnormalized weight) or
    /// `None` to drop it. Probabilities are renormalized per source state
    /// and states left with no branches are removed.
    ///
    /// This is the primitive behind the 5G adaptation (§6): dropping TAU
    /// branches (SA) and reweighting/rescaling HO branches.
    pub fn map_branches<F>(&self, mut f: F) -> SemiMarkovModel<T>
    where
        F: FnMut(&Branch<T>) -> Option<Branch<T>>,
    {
        let mut branches: Vec<(T::State, Vec<Branch<T>>)> = Vec::new();
        for (state, bs) in &self.branches {
            let mut kept: Vec<Branch<T>> = bs.iter().filter_map(&mut f).collect();
            let total: f64 = kept.iter().map(|b| b.prob).sum();
            if kept.is_empty() || total <= 0.0 {
                continue;
            }
            for b in &mut kept {
                b.prob /= total;
            }
            branches.push((*state, kept));
        }
        SemiMarkovModel { branches }
    }

    /// The fitted probability of transition `t` (0 when unobserved).
    pub fn prob(&self, t: T) -> f64 {
        self.outgoing(t.from_state())
            .iter()
            .find(|b| b.transition == t)
            .map_or(0.0, |b| b.prob)
    }

    /// The fitted sojourn law of transition `t`, if observed.
    pub fn sojourn(&self, t: T) -> Option<&Dist> {
        self.outgoing(t.from_state())
            .iter()
            .find(|b| b.transition == t)
            .map(|b| &b.sojourn)
    }
}

/// Fit a sojourn law per the method's distribution kind, falling back to the
/// empirical CDF when the parametric fit is degenerate.
pub fn fit_sojourn(samples: &[f64], kind: DistributionKind) -> Dist {
    match kind {
        DistributionKind::Poisson => Exponential::fit(samples)
            .map(Dist::Exponential)
            .unwrap_or_else(|_| empirical(samples)),
        DistributionKind::EmpiricalCdf => empirical(samples),
    }
}

fn empirical(samples: &[f64]) -> Dist {
    let clean: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
    Dist::Empirical(Ecdf::new(if clean.is_empty() { vec![0.0] } else { clean }).expect("non-empty"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_statemachine::TopTransition;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_map(entries: &[(TopTransition, &[f64])]) -> HashMap<TopTransition, Vec<f64>> {
        entries.iter().map(|(t, s)| (*t, s.to_vec())).collect()
    }

    #[test]
    fn probabilities_from_counts() {
        let samples = sample_map(&[
            (TopTransition::ConnToIdle, &[1.0, 2.0, 3.0]),
            (TopTransition::ConnToDereg, &[10.0]),
        ]);
        let m = SemiMarkovModel::fit(&samples, DistributionKind::EmpiricalCdf);
        assert!((m.prob(TopTransition::ConnToIdle) - 0.75).abs() < 1e-12);
        assert!((m.prob(TopTransition::ConnToDereg) - 0.25).abs() < 1e-12);
        assert_eq!(m.prob(TopTransition::IdleToConn), 0.0);
    }

    #[test]
    fn single_outbound_edge_has_prob_one() {
        let samples = sample_map(&[(TopTransition::DeregToConn, &[5.0, 6.0])]);
        let m = SemiMarkovModel::fit(&samples, DistributionKind::EmpiricalCdf);
        assert_eq!(m.prob(TopTransition::DeregToConn), 1.0);
    }

    #[test]
    fn empty_states_sample_none() {
        let m: SemiMarkovModel<TopTransition> =
            SemiMarkovModel::fit(&HashMap::new(), DistributionKind::Poisson);
        assert!(m.is_empty());
        let mut rng = StdRng::seed_from_u64(1);
        assert!(m
            .sample_next(cn_statemachine::TopState::Idle, &mut rng)
            .is_none());
    }

    #[test]
    fn sampling_respects_probabilities() {
        let samples = sample_map(&[
            (TopTransition::IdleToConn, &[1.0; 90]),
            (TopTransition::IdleToDereg, &[1.0; 10]),
        ]);
        let m = SemiMarkovModel::fit(&samples, DistributionKind::EmpiricalCdf);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let conn = (0..n)
            .filter(|_| {
                let (t, _) = m
                    .sample_next(cn_statemachine::TopState::Idle, &mut rng)
                    .unwrap();
                t == TopTransition::IdleToConn
            })
            .count();
        let frac = conn as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.02, "{frac}");
    }

    #[test]
    fn poisson_kind_fits_exponential() {
        let samples = sample_map(&[(TopTransition::ConnToIdle, &[2.0, 4.0, 6.0])]);
        let m = SemiMarkovModel::fit(&samples, DistributionKind::Poisson);
        match m.sojourn(TopTransition::ConnToIdle).unwrap() {
            Dist::Exponential(e) => assert!((e.mean() - 4.0).abs() < 1e-12),
            other => panic!("expected exponential, got {}", other.family()),
        }
    }

    #[test]
    fn degenerate_poisson_falls_back_to_ecdf() {
        let samples = sample_map(&[(TopTransition::ConnToIdle, &[0.0, 0.0])]);
        let m = SemiMarkovModel::fit(&samples, DistributionKind::Poisson);
        assert!(matches!(
            m.sojourn(TopTransition::ConnToIdle).unwrap(),
            Dist::Empirical(_)
        ));
    }

    #[test]
    fn serde_round_trip() {
        let samples = sample_map(&[(TopTransition::ConnToIdle, &[1.5, 2.5])]);
        let m = SemiMarkovModel::fit(&samples, DistributionKind::EmpiricalCdf);
        let json = serde_json::to_string(&m).unwrap();
        let back: SemiMarkovModel<TopTransition> = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn bottom_transitions_implement_transition_like() {
        use cn_statemachine::BottomTransition;
        for &t in BottomTransition::all() {
            assert!(t.from_state().apply(t.trigger()).is_some());
        }
    }
}
