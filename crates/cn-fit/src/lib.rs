//! Model fitting: from a control-plane trace to the paper's traffic models.
//!
//! The pipeline (§5) instantiates one **two-level state-machine-based
//! Semi-Markov model** per (UE-cluster, hour-of-day, device-type):
//!
//! 1. every UE's event stream is replayed through the two-level machine to
//!    obtain per-transition sojourn samples (`cn-statemachine::replay`);
//! 2. per (hour, device) the UEs are clustered on the paper's four traffic
//!    features with the adaptive quadtree (`cn-cluster`);
//! 3. per (cluster, hour, device) the Semi-Markov parameters are estimated:
//!    transition probabilities from transition counts, sojourn laws as
//!    empirical CDFs (the paper's choice) or MLE-fitted Poisson models (the
//!    comparison methods);
//! 4. a **first-event model** (§5.4) captures each cluster-hour's first
//!    event type and start-time-within-hour distribution.
//!
//! Four method variants reproduce the paper's Table 3 matrix
//! ([`Method`]): `Base` (EMM–ECM machine, Poisson, no clustering), `B1`
//! (+ clustering), `B2` (two-level machine, Poisson, clustering), and
//! `Ours` (two-level machine, empirical CDFs, clustering).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compact;
pub mod first_event;
pub mod inspect;
pub mod method;
pub mod model;
pub mod pipeline;
pub mod semi_markov;
pub mod sojourn;

pub use compact::compact_model_set;
pub use first_event::FirstEventModel;
pub use inspect::{inventory, verify, ModelDefect, ModelInventory};
pub use method::{DistributionKind, Method, StateMachineKind};
pub use model::{ClusterHourModel, DeviceModels, HourModels, ModelSet};
pub use pipeline::{fit, FitConfig};
pub use semi_markov::{Branch, SemiMarkovModel, TransitionLike};
