//! Property-based tests: fitted models are structurally sound for any
//! world the simulator can produce.

use cn_fit::{fit, inspect, FitConfig, Method};
use cn_trace::PopulationMix;
use cn_world::{generate_world, WorldConfig};
use proptest::prelude::*;

fn arb_world_config() -> impl Strategy<Value = WorldConfig> {
    (1u32..25, 0u32..12, 0u32..8, 1u64..1_000, 1u32..49).prop_map(
        |(phones, cars, tablets, seed, hours)| {
            WorldConfig::new(
                PopulationMix::new(phones, cars, tablets),
                f64::from(hours) / 24.0,
                seed,
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every method's fit passes the structural verifier: normalized
    /// branch probabilities, exit probabilities in [0, 1], no dangling
    /// personas, machine-kind consistency.
    #[test]
    fn fits_verify_clean(config in arb_world_config(), midx in 0usize..4) {
        let world = generate_world(&config);
        let method = Method::ALL[midx];
        let set = fit(&world, &FitConfig::new(method));
        let defects = inspect::verify(&set);
        prop_assert!(defects.is_empty(), "{:?}", defects.first());
        prop_assert!(inspect::machine_consistent(&set));
    }

    /// Fitting is deterministic.
    #[test]
    fn fitting_is_deterministic(config in arb_world_config()) {
        let world = generate_world(&config);
        let a = fit(&world, &FitConfig::new(Method::Ours));
        let b = fit(&world, &FitConfig::new(Method::Ours));
        prop_assert_eq!(a, b);
    }

    /// Model snapshots survive JSON round trips for arbitrary worlds.
    #[test]
    fn snapshots_round_trip(config in arb_world_config()) {
        let world = generate_world(&config);
        let set = fit(&world, &FitConfig::new(Method::Ours));
        let json = set.to_json().unwrap();
        let back = cn_fit::ModelSet::from_json(&json).unwrap();
        prop_assert_eq!(set, back);
    }
}
