//! Wall-clock-paced live traffic service.
//!
//! Every engine in this workspace produces a control-plane trace as a
//! sorted record stream ([`cn_scenario::RecordSource`]): the sharded
//! generator, scenario overlays, multi-population compositions. This
//! crate turns any such stream into a *service*: a long-running server
//! that emits the events in real time — or at a configurable
//! time-compression factor — over TCP, in exactly the 14-byte binary
//! framing the batch writers use. A consumer that saves the bytes gets
//! a file the batch reader recovers; a consumer of a complete run gets
//! the batch trace byte for byte.
//!
//! The moving parts, each its own module:
//!
//! * [`clock`] — the [`Clock`] abstraction: monotonic now + absolute
//!   sleep, with a deterministic [`ManualClock`] for tests;
//! * [`pace`] — open-loop pacing against absolute deadlines, so stalls
//!   cause transient lag, never accumulated drift;
//! * [`frame`] — the wire protocol: record frames plus in-band Gap and
//!   End markers in reserved code space, and the consumer-side reader;
//! * [`hub`] — bounded per-consumer queues with honest overflow (drops
//!   become positioned gap markers and a typed
//!   [`ConsumerLagged`](cn_gen::StreamError::ConsumerLagged) verdict);
//! * [`checkpoint`] — atomic persistence of the emitted-records
//!   watermark plus the spec that regenerates the stream, for
//!   byte-exact resume;
//! * [`server`] — the serve loop tying it together, with TCP accept,
//!   stop handles, and the `cn_live_*` metric family.
//!
//! The crate follows the workspace's no-async-runtime stance: threads
//! and blocking I/O only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod clock;
pub mod frame;
pub mod hub;
pub mod pace;
pub mod server;

pub use checkpoint::{Checkpoint, CheckpointError};
pub use clock::{Clock, ManualClock, SystemClock};
pub use frame::{
    capture, decode_frame, encode_frame, CapturedStream, Frame, LiveReader, LiveRecordSource,
    FRAME_BYTES,
};
pub use hub::{ConsumerHandle, ConsumerReport, Hub};
pub use pace::Pacer;
pub use server::{
    IntrospectionConfig, LiveConfig, LiveError, LiveReport, LiveServer, ServerHandle,
};
