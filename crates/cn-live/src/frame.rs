//! The live wire protocol: record frames plus in-band markers.
//!
//! A live connection carries the *exact* batch binary layout — the
//! 16-byte header ([`BINARY_MAGIC`] + a `u64` count) followed by 14-byte
//! record frames — with the count left at the zero placeholder, i.e. the
//! unfinished-writer state of the finish-or-recover contract. A consumer
//! that saves the bytes to disk therefore has a file `recover_binary`
//! accepts as an honestly-unfinished trace, and a torn tail is still
//! detected by `len % 14`.
//!
//! Two in-band marker frames extend the framing without widening it.
//! Both park in code space no record can occupy (valid device codes are
//! 0–2, valid event codes 0–5, valid UE ids are dense from 0):
//!
//! * **Gap** — `device = event = 0xFF`, `ue = u32::MAX`, `t` = number of
//!   record frames dropped at exactly this position because the
//!   consumer's bounded queue overflowed. Honest degradation: the stream
//!   never silently truncates or reorders, it tells you what it lost and
//!   where.
//! * **End** — `device = event = 0xFE`, `ue = u32::MAX`, `t` = the
//!   server's cumulative emitted-records watermark. Sent only on clean
//!   source exhaustion; its absence at EOF means the server stopped or
//!   died mid-stream (resume from the checkpoint).

use std::io::Read;

use cn_gen::StreamError;
use cn_trace::io::{decode_record, encode_record, IoError, BINARY_MAGIC};
use cn_trace::{TraceRecord, RECORD_BYTES};

/// Bytes per wire frame (identical to a batch record frame).
pub const FRAME_BYTES: usize = RECORD_BYTES;

const MARKER_UE: u32 = u32::MAX;
const GAP_CODE: u8 = 0xFF;
const END_CODE: u8 = 0xFE;

/// One frame of the live wire protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Frame {
    /// An ordinary trace record.
    Record(TraceRecord),
    /// `dropped` record frames were lost at this position (bounded-queue
    /// overflow for this consumer).
    Gap {
        /// Record frames dropped at exactly this stream position.
        dropped: u64,
    },
    /// Clean end of stream at cumulative watermark `emitted`.
    End {
        /// The server's total emitted-records watermark.
        emitted: u64,
    },
}

fn encode_marker(code: u8, payload: u64) -> [u8; FRAME_BYTES] {
    let mut buf = [0u8; FRAME_BYTES];
    buf[0..8].copy_from_slice(&payload.to_le_bytes());
    buf[8..12].copy_from_slice(&MARKER_UE.to_le_bytes());
    buf[12] = code;
    buf[13] = code;
    buf
}

/// Encode one frame into its 14-byte wire form.
pub fn encode_frame(frame: &Frame) -> [u8; FRAME_BYTES] {
    match frame {
        Frame::Record(r) => encode_record(r),
        Frame::Gap { dropped } => encode_marker(GAP_CODE, *dropped),
        Frame::End { emitted } => encode_marker(END_CODE, *emitted),
    }
}

/// Decode one 14-byte wire frame.
///
/// Markers are recognized by their reserved `(device, event, ue)`
/// pattern; anything else must be a valid record frame or the stream is
/// corrupt ([`IoError::Binary`]).
pub fn decode_frame(buf: &[u8; FRAME_BYTES]) -> Result<Frame, IoError> {
    let ue = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    let (device, event) = (buf[12], buf[13]);
    if ue == MARKER_UE && device == event && (device == GAP_CODE || device == END_CODE) {
        let payload = u64::from_le_bytes(buf[0..8].try_into().unwrap());
        return Ok(match device {
            GAP_CODE => Frame::Gap { dropped: payload },
            _ => Frame::End { emitted: payload },
        });
    }
    decode_record(buf).map(Frame::Record)
}

/// Incremental reader for one live connection.
///
/// Validates the 16-byte header up front (magic match; the count is the
/// live zero placeholder and is ignored), then yields frames until the
/// peer closes the connection. EOF on a frame boundary is a normal
/// close; EOF inside a frame is a torn tail and a typed error.
pub struct LiveReader<R> {
    src: R,
}

impl<R: Read> LiveReader<R> {
    /// Read and validate the stream header, then wrap `src`.
    pub fn new(mut src: R) -> Result<LiveReader<R>, IoError> {
        let mut header = [0u8; 16];
        src.read_exact(&mut header)?;
        if &header[0..8] != BINARY_MAGIC {
            return Err(IoError::Binary("bad magic in live stream header".into()));
        }
        Ok(LiveReader { src })
    }

    /// Next frame, or `None` on a clean connection close.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, IoError> {
        let mut buf = [0u8; FRAME_BYTES];
        let mut filled = 0;
        while filled < FRAME_BYTES {
            match self.src.read(&mut buf[filled..]) {
                Ok(0) if filled == 0 => return Ok(None),
                Ok(0) => {
                    return Err(IoError::Binary(format!(
                        "torn frame at connection close: {filled} of {FRAME_BYTES} bytes"
                    )))
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(IoError::Io(e)),
            }
        }
        decode_frame(&buf).map(Some)
    }
}

/// Everything one consumer received, split by frame kind.
#[derive(Debug, Default)]
pub struct CapturedStream {
    /// Record frames in arrival order.
    pub records: Vec<TraceRecord>,
    /// Gap payloads (dropped-frame counts) in arrival order.
    pub gaps: Vec<u64>,
    /// The End watermark, if the stream finished cleanly before close.
    pub end: Option<u64>,
}

impl CapturedStream {
    /// Total record frames this consumer lost to queue overflow.
    pub fn dropped(&self) -> u64 {
        self.gaps.iter().sum()
    }

    /// The containment-contract verdict for this consumer: any gap means
    /// the stream it saw is incomplete, surfaced as the typed
    /// [`StreamError::ConsumerLagged`] rather than a quietly shorter
    /// trace.
    pub fn verdict(&self, consumer: usize) -> Result<(), StreamError> {
        match self.dropped() {
            0 => Ok(()),
            dropped => Err(StreamError::ConsumerLagged { consumer, dropped }),
        }
    }
}

/// A live connection as a [`cn_scenario::RecordSource`]: the adapter
/// that closes the loop, letting anything built on sorted record streams
/// (the MCN discrete-event simulator, scenario overlays, exporters)
/// consume a paced TCP feed exactly as it would a batch stream.
///
/// The containment contract carries through the adapter:
///
/// * record frames flow out of `try_next` in arrival order;
/// * a **Gap** marker becomes a typed
///   [`StreamError::ConsumerLagged`] at the gap's exact position —
///   downstream never sees a silently shorter stream;
/// * an **End** marker (clean source exhaustion) or a clean connection
///   close yields `None`; the End watermark is kept for
///   [`LiveRecordSource::end_watermark`];
/// * wire-level faults (torn tail, corrupt frame) surface as
///   [`StreamError::Io`] with stage `live-read`.
pub struct LiveRecordSource<R> {
    reader: LiveReader<R>,
    consumer: usize,
    end: Option<u64>,
    dropped: u64,
    done: bool,
}

impl<R: Read> LiveRecordSource<R> {
    /// Validate the stream header and wrap the connection. `consumer` is
    /// this consumer's id in any `ConsumerLagged` verdict (the live
    /// server's accept order, or 0 for a single-connection client).
    pub fn new(src: R, consumer: usize) -> Result<LiveRecordSource<R>, IoError> {
        Ok(LiveRecordSource {
            reader: LiveReader::new(src)?,
            consumer,
            end: None,
            dropped: 0,
            done: false,
        })
    }

    /// The server's emitted-records watermark, if an End marker arrived.
    /// `None` after exhaustion means the server stopped mid-stream
    /// (resume from its checkpoint).
    pub fn end_watermark(&self) -> Option<u64> {
        self.end
    }

    /// Total record frames this connection lost to queue overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl<R: Read> cn_scenario::RecordSource for LiveRecordSource<R> {
    fn try_next(&mut self) -> Result<Option<TraceRecord>, StreamError> {
        if self.done {
            return Ok(None);
        }
        match self.reader.next_frame() {
            Ok(Some(Frame::Record(r))) => Ok(Some(r)),
            Ok(Some(Frame::Gap { dropped })) => {
                self.dropped += dropped;
                Err(StreamError::ConsumerLagged {
                    consumer: self.consumer,
                    dropped,
                })
            }
            Ok(Some(Frame::End { emitted })) => {
                self.end = Some(emitted);
                self.done = true;
                Ok(None)
            }
            Ok(None) => {
                self.done = true;
                Ok(None)
            }
            Err(e) => Err(StreamError::Io {
                stage: "live-read",
                message: e.to_string(),
            }),
        }
    }

    fn finish(self) -> Result<(), StreamError> {
        match self.dropped {
            0 => Ok(()),
            dropped => Err(StreamError::ConsumerLagged {
                consumer: self.consumer,
                dropped,
            }),
        }
    }
}

/// Drain a live connection to its close and collect what arrived.
pub fn capture<R: Read>(src: R) -> Result<CapturedStream, IoError> {
    let mut reader = LiveReader::new(src)?;
    let mut captured = CapturedStream::default();
    while let Some(frame) = reader.next_frame()? {
        match frame {
            Frame::Record(r) => captured.records.push(r),
            Frame::Gap { dropped } => captured.gaps.push(dropped),
            Frame::End { emitted } => captured.end = Some(emitted),
        }
    }
    Ok(captured)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_trace::{Timestamp, UeId};

    fn rec(t: u64, ue: u32) -> TraceRecord {
        TraceRecord::new(
            Timestamp::from_millis(t),
            UeId(ue),
            cn_trace::DeviceType::Phone,
            cn_trace::EventType::Attach,
        )
    }

    #[test]
    fn frames_round_trip() {
        for frame in [
            Frame::Record(rec(123_456, 7)),
            Frame::Gap { dropped: 42 },
            Frame::End { emitted: u64::MAX },
            Frame::Gap { dropped: 0 },
        ] {
            assert_eq!(decode_frame(&encode_frame(&frame)).unwrap(), frame);
        }
    }

    #[test]
    fn markers_do_not_shadow_any_valid_record() {
        // A record frame can never decode as a marker: marker device
        // codes are outside the valid record range, so a frame with
        // device 0xFE/0xFF and ue != MAX is corruption, not a marker.
        let mut bad = encode_marker(GAP_CODE, 1);
        bad[8..12].copy_from_slice(&7u32.to_le_bytes());
        assert!(decode_frame(&bad).is_err());
    }

    #[test]
    fn capture_splits_records_gaps_and_end() {
        let mut wire: Vec<u8> = Vec::new();
        wire.extend_from_slice(BINARY_MAGIC);
        wire.extend_from_slice(&0u64.to_le_bytes());
        for frame in [
            Frame::Record(rec(1, 0)),
            Frame::Gap { dropped: 3 },
            Frame::Record(rec(2, 1)),
            Frame::End { emitted: 5 },
        ] {
            wire.extend_from_slice(&encode_frame(&frame));
        }
        let captured = capture(&wire[..]).unwrap();
        assert_eq!(captured.records, vec![rec(1, 0), rec(2, 1)]);
        assert_eq!(captured.gaps, vec![3]);
        assert_eq!(captured.end, Some(5));
        assert_eq!(
            captured.verdict(9),
            Err(StreamError::ConsumerLagged {
                consumer: 9,
                dropped: 3
            })
        );
    }

    #[test]
    fn torn_tail_is_a_typed_error_not_a_shorter_stream() {
        let mut wire: Vec<u8> = Vec::new();
        wire.extend_from_slice(BINARY_MAGIC);
        wire.extend_from_slice(&0u64.to_le_bytes());
        wire.extend_from_slice(&encode_frame(&Frame::Record(rec(1, 0))));
        wire.extend_from_slice(&encode_frame(&Frame::Record(rec(2, 0)))[..5]);
        assert!(capture(&wire[..]).is_err());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let wire = [0u8; 16];
        assert!(LiveReader::new(&wire[..]).is_err());
    }

    #[test]
    fn record_source_adapter_keeps_the_containment_contract() {
        use cn_scenario::RecordSource;
        let mut wire: Vec<u8> = Vec::new();
        wire.extend_from_slice(BINARY_MAGIC);
        wire.extend_from_slice(&0u64.to_le_bytes());
        for frame in [
            Frame::Record(rec(1, 0)),
            Frame::Gap { dropped: 3 },
            Frame::Record(rec(2, 1)),
            Frame::End { emitted: 6 },
        ] {
            wire.extend_from_slice(&encode_frame(&frame));
        }
        let mut source = LiveRecordSource::new(&wire[..], 4).unwrap();
        assert_eq!(source.try_next().unwrap(), Some(rec(1, 0)));
        // The gap surfaces as a typed error at its exact position...
        assert_eq!(
            source.try_next(),
            Err(StreamError::ConsumerLagged {
                consumer: 4,
                dropped: 3
            })
        );
        // ...and the stream continues honestly after it.
        assert_eq!(source.try_next().unwrap(), Some(rec(2, 1)));
        assert_eq!(source.try_next().unwrap(), None);
        assert_eq!(source.end_watermark(), Some(6));
        // Exhausted stays exhausted.
        assert_eq!(source.try_next().unwrap(), None);
        // The terminal verdict remembers the loss.
        assert_eq!(
            source.finish(),
            Err(StreamError::ConsumerLagged {
                consumer: 4,
                dropped: 3
            })
        );
    }

    #[test]
    fn clean_record_source_finishes_ok() {
        use cn_scenario::RecordSource;
        let mut wire: Vec<u8> = Vec::new();
        wire.extend_from_slice(BINARY_MAGIC);
        wire.extend_from_slice(&0u64.to_le_bytes());
        for frame in [Frame::Record(rec(1, 0)), Frame::End { emitted: 1 }] {
            wire.extend_from_slice(&encode_frame(&frame));
        }
        let mut source = LiveRecordSource::new(&wire[..], 0).unwrap();
        assert_eq!(source.try_next().unwrap(), Some(rec(1, 0)));
        assert_eq!(source.try_next().unwrap(), None);
        assert!(source.finish().is_ok());
    }

    #[test]
    fn torn_tail_surfaces_as_typed_io_error() {
        use cn_scenario::RecordSource;
        let mut wire: Vec<u8> = Vec::new();
        wire.extend_from_slice(BINARY_MAGIC);
        wire.extend_from_slice(&0u64.to_le_bytes());
        wire.extend_from_slice(&encode_frame(&Frame::Record(rec(1, 0)))[..7]);
        let mut source = LiveRecordSource::new(&wire[..], 0).unwrap();
        assert!(matches!(
            source.try_next(),
            Err(StreamError::Io {
                stage: "live-read",
                ..
            })
        ));
    }
}
