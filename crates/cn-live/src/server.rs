//! The live server: pull → pace → broadcast, with stop and resume.
//!
//! [`LiveServer::serve`] drives one [`RecordSource`] to exhaustion (or
//! to a stop), pacing every record against its absolute wall deadline
//! and fanning the encoded frame out through the [`Hub`]. TCP consumers
//! attach through [`LiveServer::bind`]'s acceptor thread; in-process
//! consumers (tests, pipes) attach straight to the hub.
//!
//! ### Failure and stop semantics
//!
//! * Source exhausted → consumers get pending gaps + an End marker,
//!   `LiveReport::completed = true`.
//! * `stop_after` watermark reached, or [`ServerHandle::stop`] →
//!   [`Hub::abort`]: consumers see a clean close with no End marker and
//!   the final checkpoint carries the exact watermark (resume is
//!   byte-exact).
//! * Source fault (worker panic, I/O) → the typed [`StreamError`] is
//!   returned and consumers see the no-End close; the stream never
//!   poses as complete.
//!
//! ### Metrics (`registry` handed to [`LiveServer::new`])
//!
//! * `cn_live_emitted_total` — records broadcast (counter);
//! * `cn_live_lag_ms` — per-record emission lag behind the absolute
//!   deadline (histogram; transient by construction, see [`Pacer`]);
//! * `cn_live_backlog_blocks` — deepest any consumer queue has been
//!   (high-watermark gauge);
//! * `cn_live_drops_total` — record frames dropped across all consumers
//!   (counter);
//! * `cn_live_consumer_{frames_total,drops_total,backlog_blocks}` with
//!   `{consumer="id"}` — the per-consumer split, registered on accept.
//!
//! ### Introspection ([`LiveServer::mount_introspection`])
//!
//! An optional HTTP scrape listener (`/metrics`, `/status`,
//! `/recorder`) plus a [`FlightRecorder`] sampling the registry in the
//! background; with a forensics path configured, a serve that fails or
//! stops short of exhaustion dumps its last minute of telemetry to
//! disk before returning (and, with the panic hook, so does a crash).

use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use cn_gen::StreamError;
use cn_obs::recorder::{FlightRecorder, RecorderConfig};
use cn_obs::{Counter, Histogram, IntrospectionServer, Registry};
use cn_scenario::RecordSource;

use crate::checkpoint::{Checkpoint, CheckpointError};
use crate::clock::Clock;
use crate::frame::{encode_frame, Frame};
use crate::hub::{ConsumerReport, Hub};
use crate::pace::Pacer;

/// Tuning for one serve run.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveConfig {
    /// Trace-time over wall-time ratio (`wall = trace / compression`):
    /// `1.0` replays in real time, `3600.0` serves an hour of trace per
    /// wall second. Must be finite and positive.
    pub compression: f64,
    /// Per-consumer queue depth in frames (bounded back-pressure
    /// buffer). Must be non-zero.
    pub queue_frames: usize,
    /// Write a checkpoint every N emitted records (`0` = only the final
    /// one). Periodic checkpoints are at-least-once across a kill; the
    /// final one on a graceful stop is exact.
    pub checkpoint_every: u64,
    /// Stop serving once the cumulative watermark reaches this count
    /// (kill-simulation / drain drills). `None` = serve to exhaustion.
    pub stop_after: Option<u64>,
}

impl LiveConfig {
    /// Defaults: `queue_frames = 4096`, final-checkpoint-only, serve to
    /// exhaustion.
    pub fn new(compression: f64) -> LiveConfig {
        LiveConfig {
            compression,
            queue_frames: 4096,
            checkpoint_every: 0,
            stop_after: None,
        }
    }

    fn validate(&self) -> Result<(), LiveError> {
        if !self.compression.is_finite() || self.compression <= 0.0 {
            return Err(LiveError::InvalidCompression(self.compression));
        }
        if self.queue_frames == 0 {
            return Err(LiveError::ZeroQueue);
        }
        Ok(())
    }
}

/// Typed failures of the live service.
#[derive(Debug)]
pub enum LiveError {
    /// `compression` was NaN, infinite, zero, or negative.
    InvalidCompression(f64),
    /// `queue_frames` was zero (a zero-capacity rendezvous queue would
    /// make every broadcast a drop).
    ZeroQueue,
    /// The record source faulted (containment contract: the typed error
    /// is propagated, never swallowed).
    Stream(StreamError),
    /// A checkpoint could not be written or read.
    Checkpoint(CheckpointError),
    /// Binding or configuring the TCP listener failed.
    Bind(String),
    /// The introspection plane (HTTP listener or flight recorder)
    /// could not be set up.
    Introspection(String),
}

impl std::fmt::Display for LiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiveError::InvalidCompression(c) => {
                write!(f, "invalid compression factor {c} (need finite > 0)")
            }
            LiveError::ZeroQueue => write!(f, "consumer queue depth must be non-zero"),
            LiveError::Stream(e) => write!(f, "record source failed: {e}"),
            LiveError::Checkpoint(e) => write!(f, "{e}"),
            LiveError::Bind(msg) => write!(f, "listener setup failed: {msg}"),
            LiveError::Introspection(msg) => {
                write!(f, "introspection plane setup failed: {msg}")
            }
        }
    }
}

impl std::error::Error for LiveError {}

impl From<StreamError> for LiveError {
    fn from(e: StreamError) -> Self {
        LiveError::Stream(e)
    }
}

impl From<CheckpointError> for LiveError {
    fn from(e: CheckpointError) -> Self {
        LiveError::Checkpoint(e)
    }
}

/// What one serve run did.
#[derive(Debug)]
pub struct LiveReport {
    /// Cumulative watermark (includes any resumed prefix).
    pub emitted: u64,
    /// Records actually broadcast by *this* run.
    pub served: u64,
    /// Records fast-forwarded past on resume (not paced, not sent).
    pub skipped: u64,
    /// Whether the source ran to exhaustion (End marker sent).
    pub completed: bool,
    /// Per-consumer outcomes in accept order.
    pub consumers: Vec<Result<ConsumerReport, StreamError>>,
}

/// Remote stop switch for a running serve.
#[derive(Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Ask the serve loop (and the acceptor, if bound) to wind down at
    /// the next record boundary.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

/// How a serve run exposes itself at runtime; see
/// [`LiveServer::mount_introspection`].
#[derive(Debug, Clone)]
pub struct IntrospectionConfig {
    /// Address for the HTTP scrape listener (`"127.0.0.1:0"` lets the
    /// OS pick a port; the bound address is returned by mount).
    pub addr: String,
    /// Flight-recorder tuning (sampling interval, ring size, optional
    /// JSONL path with rotation).
    pub recorder: RecorderConfig,
    /// Where a failure dump lands: a serve that errors or stops before
    /// exhaustion writes the recorder's ring plus a terminal snapshot
    /// here. `None` = no forensics on failure.
    pub forensics_path: Option<PathBuf>,
    /// Also chain a process panic hook that writes the same dump (only
    /// meaningful with `forensics_path` set).
    pub panic_hook: bool,
}

impl IntrospectionConfig {
    /// Ephemeral localhost port, default recorder, no forensics.
    pub fn new() -> IntrospectionConfig {
        IntrospectionConfig {
            addr: "127.0.0.1:0".to_string(),
            recorder: RecorderConfig::default(),
            forensics_path: None,
            panic_hook: false,
        }
    }
}

impl Default for IntrospectionConfig {
    fn default() -> IntrospectionConfig {
        IntrospectionConfig::new()
    }
}

struct IntrospectionState {
    http: IntrospectionServer,
    recorder: FlightRecorder,
    forensics_path: Option<PathBuf>,
}

/// A wall-clock-paced traffic server over one generation-engine stream.
pub struct LiveServer<C: Clock> {
    clock: C,
    cfg: LiveConfig,
    hub: Arc<Hub>,
    registry: Registry,
    emitted_total: Counter,
    lag_ms: Histogram,
    stop: Arc<AtomicBool>,
    introspection: Mutex<Option<IntrospectionState>>,
}

impl<C: Clock> LiveServer<C> {
    /// Validate `cfg` and set up the hub and metrics.
    pub fn new(clock: C, cfg: LiveConfig, registry: &Registry) -> Result<LiveServer<C>, LiveError> {
        cfg.validate()?;
        Ok(LiveServer {
            hub: Arc::new(Hub::new(cfg.queue_frames, registry)),
            registry: registry.clone(),
            emitted_total: registry.counter("cn_live_emitted_total"),
            lag_ms: registry.histogram("cn_live_lag_ms"),
            stop: Arc::new(AtomicBool::new(false)),
            introspection: Mutex::new(None),
            clock,
            cfg,
        })
    }

    /// Mount the runtime introspection plane next to the traffic port:
    /// start a [`FlightRecorder`] over this server's registry and an
    /// HTTP listener serving `/metrics`, `/status`, and `/recorder`.
    /// Returns the listener's bound address. With a `forensics_path`
    /// configured, a serve run that fails (source fault) or stops short
    /// of exhaustion (kill drill, [`ServerHandle::stop`]) dumps the
    /// ring plus a terminal snapshot there before returning — and with
    /// `panic_hook`, so does a crash.
    pub fn mount_introspection(&self, cfg: IntrospectionConfig) -> Result<SocketAddr, LiveError> {
        let recorder = FlightRecorder::start(&self.registry, cfg.recorder)
            .map_err(|e| LiveError::Introspection(format!("flight recorder: {e}")))?;
        let http = IntrospectionServer::bind(&cfg.addr, &self.registry, Some(recorder.clone()))
            .map_err(|e| LiveError::Introspection(format!("http listener: {e}")))?;
        if cfg.panic_hook {
            if let Some(path) = &cfg.forensics_path {
                recorder.install_panic_hook(path);
            }
        }
        let addr = http.local_addr();
        *self.introspection.lock().unwrap() = Some(IntrospectionState {
            http,
            recorder,
            forensics_path: cfg.forensics_path,
        });
        Ok(addr)
    }

    /// The mounted flight recorder, if [`LiveServer::mount_introspection`]
    /// ran (for in-process status readers like `examples/live_replay`).
    pub fn recorder(&self) -> Option<FlightRecorder> {
        self.introspection
            .lock()
            .unwrap()
            .as_ref()
            .map(|s| s.recorder.clone())
    }

    /// Write the forensics dump now (no-op unless introspection is
    /// mounted with a forensics path). The serve loop calls this on its
    /// failure paths; it is public so operators' own supervision code
    /// can force a dump too.
    pub fn dump_forensics(&self) {
        let state = self.introspection.lock().unwrap();
        if let Some(state) = state.as_ref() {
            if let Some(path) = &state.forensics_path {
                if let Err(e) = state.recorder.dump_forensics(path) {
                    eprintln!("cn-live: forensics dump to {} failed: {e}", path.display());
                }
            }
        }
    }

    /// The fan-out hub, for attaching in-process consumers directly
    /// (tests, pipes) via [`Hub::add_writer`].
    pub fn hub(&self) -> &Arc<Hub> {
        &self.hub
    }

    /// A clonable stop switch.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            stop: Arc::clone(&self.stop),
        }
    }

    /// Bind a TCP listener and spawn the acceptor thread: every
    /// connection becomes a hub consumer receiving the stream from its
    /// moment of attachment onward. Returns the bound address (use port
    /// 0 to let the OS pick). The acceptor winds down when the serve
    /// run ends or [`ServerHandle::stop`] fires.
    pub fn bind(&self, addr: &str) -> Result<SocketAddr, LiveError> {
        let listener = TcpListener::bind(addr).map_err(|e| LiveError::Bind(e.to_string()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| LiveError::Bind(e.to_string()))?;
        let local = listener
            .local_addr()
            .map_err(|e| LiveError::Bind(e.to_string()))?;
        let hub = Arc::clone(&self.hub);
        let stop = Arc::clone(&self.stop);
        std::thread::spawn(move || accept_loop(&listener, &hub, &stop));
        Ok(local)
    }

    /// Serve `source` to all attached consumers.
    ///
    /// `resume_from` fast-forwards past that many records without pacing
    /// or sending them (the watermark from a [`Checkpoint`]); the pacing
    /// origin re-anchors at the first record actually served, so a
    /// resume never tries to "catch up" wall time the dead server lost.
    /// `checkpoint` is an optional `(path, template)` pair: progress is
    /// saved there with the template's config/scenario/compression and
    /// the live watermark.
    pub fn serve<S: RecordSource>(
        &self,
        source: S,
        resume_from: u64,
        checkpoint: Option<(PathBuf, Checkpoint)>,
    ) -> Result<LiveReport, LiveError> {
        let trace = cn_obs::trace::global();
        let _serve_span = cn_obs::Span::start_traced(&self.registry, "cn_live_serve_ns", &trace);
        let result = self.serve_inner(source, resume_from, checkpoint);
        // A failed serve — source fault *or* a stop short of exhaustion
        // (kill drill, operator stop) — leaves its last minute of
        // telemetry on disk before anyone tears the process down.
        let failed = match &result {
            Err(_) => true,
            Ok(report) => !report.completed,
        };
        if failed {
            self.dump_forensics();
        }
        result
    }

    fn serve_inner<S: RecordSource>(
        &self,
        mut source: S,
        resume_from: u64,
        checkpoint: Option<(PathBuf, Checkpoint)>,
    ) -> Result<LiveReport, LiveError> {
        let save = |emitted: u64| -> Result<(), LiveError> {
            if let Some((path, template)) = &checkpoint {
                Checkpoint {
                    emitted,
                    ..template.clone()
                }
                .save(path)?;
            }
            Ok(())
        };
        let mut emitted = resume_from;
        let mut skipped = 0u64;
        let mut served = 0u64;
        let mut completed = false;
        let mut pacer: Option<Pacer> = None;
        loop {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            if self.cfg.stop_after.is_some_and(|n| emitted >= n) {
                break;
            }
            let Some(record) = source.try_next().map_err(LiveError::Stream)? else {
                completed = true;
                break;
            };
            if skipped < resume_from {
                skipped += 1;
                continue;
            }
            let t_ms = record.t.as_millis();
            let pacer = pacer.get_or_insert_with(|| {
                Pacer::new(&self.clock, self.cfg.compression, t_ms, self.lag_ms.clone())
            });
            pacer.pace(t_ms);
            self.hub.broadcast(encode_frame(&Frame::Record(record)));
            emitted += 1;
            served += 1;
            self.emitted_total.inc();
            if self.cfg.checkpoint_every != 0 && emitted.is_multiple_of(self.cfg.checkpoint_every) {
                save(emitted)?;
            }
        }
        // Wind the fan-out down before the final checkpoint so the
        // checkpoint never claims more than what reached the queues.
        let consumers = if completed {
            self.hub.finish(emitted)
        } else {
            self.hub.abort()
        };
        save(emitted)?;
        self.stop.store(true, Ordering::SeqCst); // winds down the acceptor
        source.finish().map_err(LiveError::Stream)?;
        Ok(LiveReport {
            emitted,
            served,
            skipped,
            completed,
            consumers,
        })
    }
}

impl<C: Clock> Drop for LiveServer<C> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(state) = self.introspection.lock().unwrap().take() {
            state.recorder.stop();
            state.http.stop();
        }
    }
}

fn accept_loop(listener: &TcpListener, hub: &Arc<Hub>, stop: &Arc<AtomicBool>) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                hub.add_writer(stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => return,
        }
    }
}
