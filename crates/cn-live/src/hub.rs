//! Fan-out to consumers over bounded queues, with honest overflow.
//!
//! The broadcaster (the serve loop) must never block on a slow consumer
//! — open-loop pacing dies the moment emission waits on the slowest
//! socket. Each consumer therefore gets a bounded frame queue
//! ([`std::sync::mpsc::sync_channel`]) drained by its own writer thread,
//! and the broadcaster only ever `try_send`s:
//!
//! * queue has room → the frame is enqueued; the high-watermark gauge
//!   `cn_live_backlog_blocks` tracks the deepest any queue has been
//!   (one block = one queued 14-byte frame);
//!   per-consumer twins (`cn_live_consumer_backlog_blocks`,
//!   `cn_live_consumer_drops_total`, `cn_live_consumer_frames_total`,
//!   all labeled `{consumer="id"}`) are registered at accept time so
//!   `/status` can say *which* consumer is the slow one — the
//!   broadcaster-wide totals are kept unchanged alongside;
//! * queue is full → the frame is **dropped for that consumer only**,
//!   counted in `cn_live_drops_total`, and folded into a pending gap
//!   marker that is enqueued at the next opportunity — so the gap
//!   appears on the wire at exactly the position the loss happened and
//!   the consumer's verdict becomes the typed
//!   [`StreamError::ConsumerLagged`]. Degradation is per-consumer,
//!   explicit, and position-accurate; never a silently shorter stream.
//!
//! Consumers that disconnect are marked dead and skipped. On clean
//! source exhaustion [`Hub::finish`] flushes pending gaps and an End
//! marker to every live consumer (with a bounded patience budget so a
//! wedged socket cannot hang shutdown); [`Hub::abort`] drops the queues
//! as-is, which writers observe as a close without an End marker — the
//! wire-level signal for "server stopped mid-stream, resume from the
//! checkpoint".

use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TryRecvError, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use cn_gen::StreamError;
use cn_obs::{Counter, Gauge, Registry};
use cn_trace::io::BINARY_MAGIC;

use crate::frame::{encode_frame, Frame, FRAME_BYTES};

/// How long `finish` will wait on one full consumer queue before giving
/// the consumer up (1 ms per retry).
const FINISH_PATIENCE_MS: u32 = 5_000;

/// What one consumer's writer saw by the time its connection wound down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsumerReport {
    /// The consumer's id (accept order, starting at 0).
    pub consumer: usize,
    /// Frames actually written to the sink (records + markers).
    pub frames_written: u64,
    /// Record frames dropped for this consumer by queue overflow.
    pub dropped: u64,
}

impl ConsumerReport {
    /// Typed verdict: a consumer that lost frames did not receive the
    /// stream, and that is an error, not a footnote.
    pub fn verdict(&self) -> Result<(), StreamError> {
        match self.dropped {
            0 => Ok(()),
            dropped => Err(StreamError::ConsumerLagged {
                consumer: self.consumer,
                dropped,
            }),
        }
    }
}

struct ConsumerSlot {
    tx: SyncSender<[u8; FRAME_BYTES]>,
    /// Frames currently queued (incremented on send, decremented by the
    /// writer on receive) — feeds the backlog high-watermark gauge.
    inflight: Arc<AtomicU64>,
    /// Total record frames dropped for this consumer (shared with the
    /// writer so the final report carries it).
    dropped: Arc<AtomicU64>,
    /// Drops not yet announced on the wire; folded into one gap marker
    /// enqueued at the next successful send.
    pending_gap: u64,
    dead: bool,
    /// `cn_live_consumer_drops_total{consumer="id"}` — this consumer's
    /// own drop series (the unlabeled total is kept alongside).
    drops: Counter,
    /// `cn_live_consumer_backlog_blocks{consumer="id"}` — this
    /// consumer's queue-depth high watermark. Per-consumer *lag* is this
    /// backlog: emission lag (`cn_live_lag_ms`) is broadcaster-wide by
    /// construction, and a consumer falls behind exactly by letting its
    /// queue deepen.
    backlog: Gauge,
}

/// Handle on one consumer's writer thread.
pub struct ConsumerHandle {
    consumer: usize,
    join: JoinHandle<Result<ConsumerReport, StreamError>>,
}

impl ConsumerHandle {
    /// The consumer's id (accept order).
    pub fn consumer(&self) -> usize {
        self.consumer
    }

    /// Wait for the writer to wind down and return its report. A panic
    /// in the writer surfaces as the containment-contract
    /// [`StreamError::WorkerPanicked`].
    pub fn join(self) -> Result<ConsumerReport, StreamError> {
        let consumer = self.consumer;
        self.join.join().unwrap_or_else(|payload| {
            let payload = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            Err(StreamError::WorkerPanicked {
                shard: consumer,
                payload,
            })
        })
    }
}

/// The broadcaster side of the live service.
pub struct Hub {
    consumers: Mutex<Vec<ConsumerSlot>>,
    handles: Mutex<Vec<ConsumerHandle>>,
    queue_frames: usize,
    next_id: AtomicUsize,
    drops_total: Counter,
    backlog: Gauge,
    /// Kept so per-consumer series can be registered at accept time —
    /// consumer ids are only known then, not at hub construction.
    registry: Registry,
}

impl Hub {
    /// A hub whose per-consumer queues hold `queue_frames` frames.
    /// Metrics (`cn_live_drops_total`, `cn_live_backlog_blocks`, and
    /// the per-consumer `cn_live_consumer_*{consumer="id"}` series
    /// registered on accept) land in `registry`.
    pub fn new(queue_frames: usize, registry: &Registry) -> Hub {
        debug_assert!(queue_frames > 0, "unvalidated zero queue depth");
        Hub {
            consumers: Mutex::new(Vec::new()),
            handles: Mutex::new(Vec::new()),
            queue_frames: queue_frames.max(1),
            next_id: AtomicUsize::new(0),
            drops_total: registry.counter("cn_live_drops_total"),
            backlog: registry.gauge("cn_live_backlog_blocks"),
            registry: registry.clone(),
        }
    }

    /// Attach a consumer; its writer thread immediately sends the live
    /// stream header and then drains the queue into `sink`. Returns the
    /// consumer id (accept order).
    pub fn add_writer<W: Write + Send + 'static>(&self, sink: W) -> usize {
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let id_str = id.to_string();
        let consumer_label: [(&str, &str); 1] = [("consumer", id_str.as_str())];
        let (tx, rx) = std::sync::mpsc::sync_channel::<[u8; FRAME_BYTES]>(self.queue_frames);
        let inflight = Arc::new(AtomicU64::new(0));
        let dropped = Arc::new(AtomicU64::new(0));
        let slot = ConsumerSlot {
            tx,
            inflight: Arc::clone(&inflight),
            dropped: Arc::clone(&dropped),
            pending_gap: 0,
            dead: false,
            drops: self
                .registry
                .counter_with("cn_live_consumer_drops_total", &consumer_label),
            backlog: self
                .registry
                .gauge_with("cn_live_consumer_backlog_blocks", &consumer_label),
        };
        let frames_total = self
            .registry
            .counter_with("cn_live_consumer_frames_total", &consumer_label);
        let join =
            std::thread::spawn(move || writer_loop(id, sink, rx, inflight, dropped, frames_total));
        self.consumers.lock().unwrap().push(slot);
        self.handles
            .lock()
            .unwrap()
            .push(ConsumerHandle { consumer: id, join });
        id
    }

    /// Consumers attached and not yet observed dead.
    pub fn consumer_count(&self) -> usize {
        self.consumers
            .lock()
            .unwrap()
            .iter()
            .filter(|s| !s.dead)
            .count()
    }

    /// Offer one record frame to every live consumer (never blocks).
    pub fn broadcast(&self, frame: [u8; FRAME_BYTES]) {
        let mut consumers = self.consumers.lock().unwrap();
        for slot in consumers.iter_mut() {
            if slot.dead {
                continue;
            }
            self.offer(slot, frame);
        }
    }

    /// Try to deliver `frame` to one consumer, gap bookkeeping included.
    fn offer(&self, slot: &mut ConsumerSlot, frame: [u8; FRAME_BYTES]) {
        // A pending gap marker goes first so it lands on the wire at the
        // exact position the drops happened.
        if slot.pending_gap > 0 {
            let gap = encode_frame(&Frame::Gap {
                dropped: slot.pending_gap,
            });
            match self.try_deliver(slot, gap) {
                Ok(()) => slot.pending_gap = 0,
                Err(TrySendError::Full(_)) => {
                    // Still no room: the record joins the gap.
                    self.drop_frame(slot);
                    return;
                }
                Err(TrySendError::Disconnected(_)) => {
                    slot.dead = true;
                    return;
                }
            }
        }
        match self.try_deliver(slot, frame) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => self.drop_frame(slot),
            Err(TrySendError::Disconnected(_)) => slot.dead = true,
        }
    }

    /// `try_send` with backlog accounting. The depth counter is bumped
    /// *before* the frame becomes visible to the writer (and undone on
    /// failure) — counting after the send races the writer's decrement
    /// and could wrap the counter below zero.
    fn try_deliver(
        &self,
        slot: &ConsumerSlot,
        frame: [u8; FRAME_BYTES],
    ) -> Result<(), TrySendError<[u8; FRAME_BYTES]>> {
        slot.inflight.fetch_add(1, Ordering::AcqRel);
        match slot.tx.try_send(frame) {
            Ok(()) => {
                let depth = slot.inflight.load(Ordering::Acquire);
                self.backlog.record_max(depth);
                slot.backlog.record_max(depth);
                Ok(())
            }
            Err(e) => {
                slot.inflight.fetch_sub(1, Ordering::AcqRel);
                Err(e)
            }
        }
    }

    fn drop_frame(&self, slot: &mut ConsumerSlot) {
        slot.pending_gap += 1;
        slot.dropped.fetch_add(1, Ordering::AcqRel);
        self.drops_total.inc();
        slot.drops.inc();
    }

    /// Blocking-ish send used only at stream end, with a bounded
    /// patience budget so one wedged consumer cannot hang shutdown.
    fn send_patiently(&self, slot: &mut ConsumerSlot, frame: [u8; FRAME_BYTES]) -> bool {
        for _ in 0..FINISH_PATIENCE_MS {
            match self.try_deliver(slot, frame) {
                Ok(()) => return true,
                Err(TrySendError::Full(_)) => std::thread::sleep(Duration::from_millis(1)),
                Err(TrySendError::Disconnected(_)) => {
                    slot.dead = true;
                    return false;
                }
            }
        }
        slot.dead = true;
        false
    }

    /// Clean end of stream: flush any pending gap, send the End marker
    /// at watermark `emitted`, close all queues, and join the writers.
    /// Reports come back in accept order.
    pub fn finish(&self, emitted: u64) -> Vec<Result<ConsumerReport, StreamError>> {
        {
            let mut consumers = self.consumers.lock().unwrap();
            for i in 0..consumers.len() {
                let slot = &mut consumers[i];
                if slot.dead {
                    continue;
                }
                if slot.pending_gap > 0 {
                    let gap = encode_frame(&Frame::Gap {
                        dropped: slot.pending_gap,
                    });
                    if !self.send_patiently(slot, gap) {
                        continue;
                    }
                    slot.pending_gap = 0;
                }
                let end = encode_frame(&Frame::End { emitted });
                self.send_patiently(slot, end);
            }
            consumers.clear(); // drop senders: writers drain and exit
        }
        self.join_all()
    }

    /// Abrupt stop (kill/stop-after): close all queues *without* an End
    /// marker. Writers flush what was already queued, so consumers see a
    /// valid zero-count (recoverable) stream that simply ends — the
    /// signal to resume from the checkpoint.
    pub fn abort(&self) -> Vec<Result<ConsumerReport, StreamError>> {
        self.consumers.lock().unwrap().clear();
        self.join_all()
    }

    fn join_all(&self) -> Vec<Result<ConsumerReport, StreamError>> {
        let handles: Vec<ConsumerHandle> = std::mem::take(&mut *self.handles.lock().unwrap());
        handles.into_iter().map(ConsumerHandle::join).collect()
    }
}

fn io_err(stage: &'static str) -> impl Fn(std::io::Error) -> StreamError {
    move |e| StreamError::Io {
        stage,
        message: e.to_string(),
    }
}

/// One consumer's writer: header first, then drain the queue until the
/// hub closes it, flushing whenever the queue runs momentarily empty so
/// paced (slow) streams still reach the socket promptly.
fn writer_loop<W: Write>(
    id: usize,
    sink: W,
    rx: Receiver<[u8; FRAME_BYTES]>,
    inflight: Arc<AtomicU64>,
    dropped: Arc<AtomicU64>,
    frames_total: Counter,
) -> Result<ConsumerReport, StreamError> {
    let mut out = BufWriter::new(sink);
    out.write_all(BINARY_MAGIC).map_err(io_err("live-header"))?;
    out.write_all(&0u64.to_le_bytes())
        .map_err(io_err("live-header"))?;
    let mut frames_written = 0u64;
    let mut write = |out: &mut BufWriter<W>, frame: [u8; FRAME_BYTES]| {
        inflight.fetch_sub(1, Ordering::AcqRel);
        frames_written += 1;
        frames_total.inc();
        out.write_all(&frame).map_err(io_err("live-write"))
    };
    loop {
        match rx.try_recv() {
            Ok(frame) => write(&mut out, frame)?,
            Err(TryRecvError::Empty) => {
                out.flush().map_err(io_err("live-flush"))?;
                match rx.recv() {
                    Ok(frame) => write(&mut out, frame)?,
                    Err(_) => break,
                }
            }
            Err(TryRecvError::Disconnected) => break,
        }
    }
    out.flush().map_err(io_err("live-flush"))?;
    Ok(ConsumerReport {
        consumer: id,
        frames_written,
        dropped: dropped.load(Ordering::Acquire),
    })
}
