//! Open-loop pacing against absolute deadlines.
//!
//! Each record's wall deadline is computed from the stream origin:
//!
//! ```text
//! deadline_ns = origin_wall_ns + (t_ms − origin_trace_ms) · 1e6 / compression
//! ```
//!
//! The pacer sleeps until that *absolute* monotonic deadline — never
//! "sleep for the inter-record delta". The difference matters under
//! load: with relative sleeps every stall (slow source pull, consumer
//! back-pressure, scheduler hiccup) shifts the rest of the stream
//! permanently, and the error accumulates for the whole run. With
//! absolute deadlines a stall produces transient lag on the records
//! whose deadlines passed during it, and the very next record whose
//! deadline is still in the future is emitted exactly on time again.
//! Lag is therefore a *measurement*, not a debt — it is recorded per
//! record into the `cn_live_lag_ms` histogram and decays to zero as soon
//! as the server catches up.

use cn_obs::{Histogram, TraceSink};

use crate::clock::Clock;

/// Sleeps projected to last at least this long get a trace span; the
/// threshold keeps sleep-vs-emit visible in Perfetto without producing
/// one event per record at high compression (where inter-record sleeps
/// are sub-microsecond and mostly elided by the deadline math anyway).
const TRACE_SLEEP_MIN_NS: u64 = 100_000;

/// Absolute-deadline scheduler for one serve run.
pub struct Pacer<'c> {
    clock: &'c dyn Clock,
    /// Wall nanoseconds per trace millisecond (`1e6 / compression`).
    ns_per_trace_ms: f64,
    origin_trace_ms: u64,
    origin_wall_ns: u64,
    lag_ms: Histogram,
    /// Resolved once at construction (never per record): the global
    /// trace sink, for `cn_live_pacer_sleep` spans on long sleeps.
    trace: TraceSink,
}

impl<'c> Pacer<'c> {
    /// Anchor the schedule: trace time `origin_trace_ms` corresponds to
    /// wall "now". `compression` must be finite and positive (validated
    /// by the server config before any pacer exists).
    pub fn new(
        clock: &'c dyn Clock,
        compression: f64,
        origin_trace_ms: u64,
        lag_ms: Histogram,
    ) -> Pacer<'c> {
        debug_assert!(
            compression.is_finite() && compression > 0.0,
            "unvalidated compression factor {compression}"
        );
        Pacer {
            ns_per_trace_ms: 1.0e6 / compression,
            origin_trace_ms,
            origin_wall_ns: clock.now_ns(),
            clock,
            lag_ms,
            trace: cn_obs::trace::global(),
        }
    }

    /// The absolute wall deadline for trace time `t_ms`.
    pub fn deadline_ns(&self, t_ms: u64) -> u64 {
        let dt_ms = t_ms.saturating_sub(self.origin_trace_ms);
        let dt_ns = (dt_ms as f64 * self.ns_per_trace_ms) as u64;
        self.origin_wall_ns.saturating_add(dt_ns)
    }

    /// Block until `t_ms`'s deadline, then return the transient lag in
    /// nanoseconds (0 when the deadline was met). The lag is also
    /// recorded, in milliseconds, into the `cn_live_lag_ms` histogram.
    pub fn pace(&self, t_ms: u64) -> u64 {
        let deadline = self.deadline_ns(t_ms);
        if self.trace.is_enabled()
            && deadline.saturating_sub(self.clock.now_ns()) >= TRACE_SLEEP_MIN_NS
        {
            let _sleep = self.trace.span("cn_live_pacer_sleep");
            self.clock.sleep_until(deadline);
        } else {
            self.clock.sleep_until(deadline);
        }
        let lag_ns = self.clock.now_ns().saturating_sub(deadline);
        self.lag_ms.record(lag_ns / 1_000_000);
        lag_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn deadlines_scale_with_compression() {
        let clock = ManualClock::new();
        clock.advance(500); // non-zero wall origin
        for (compression, t_ms, want_offset_ns) in [
            (1.0, 1_000u64, 1_000_000_000u64),
            (60.0, 60_000, 1_000_000_000),
            (3600.0, 3_600_000, 1_000_000_000),
            (2.0, 10, 5_000_000),
        ] {
            let pacer = Pacer::new(&clock, compression, 0, Histogram::noop());
            assert_eq!(pacer.deadline_ns(t_ms), 500 + want_offset_ns);
        }
    }

    #[test]
    fn lag_is_transient_not_accumulated() {
        let clock = ManualClock::new();
        let pacer = Pacer::new(&clock, 1.0, 0, Histogram::noop());
        assert_eq!(pacer.pace(1_000), 0);
        // A 5 s stall: the t=2s and t=4s deadlines pass during it.
        clock.advance(5_000_000_000);
        assert_eq!(pacer.pace(2_000), 4_000_000_000);
        assert_eq!(pacer.pace(4_000), 2_000_000_000);
        // First record past the stall horizon is exactly on time again.
        assert_eq!(pacer.pace(7_000), 0);
        assert_eq!(clock.now_ns(), 7_000_000_000);
    }
}
