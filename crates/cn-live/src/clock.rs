//! Monotonic clocks for wall-clock pacing.
//!
//! The pacer schedules each record against an *absolute* deadline on a
//! monotonic clock, so everything it needs from the platform is "what
//! time is it" and "block until then". [`Clock`] abstracts exactly that
//! pair, which keeps the pacing logic deterministic under test:
//! [`SystemClock`] is the production implementation over
//! [`std::time::Instant`], and [`ManualClock`] is a hand-cranked fake
//! whose `sleep_until` jumps time forward instantly while recording
//! every sleep it was asked for.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A monotonic nanosecond clock the pacer can sleep against.
///
/// `now_ns` is relative to an arbitrary per-clock origin — only
/// differences are meaningful — and never goes backwards.
pub trait Clock: Send + Sync {
    /// Nanoseconds since this clock's origin.
    fn now_ns(&self) -> u64;

    /// Block until `now_ns() >= deadline_ns`. A deadline already in the
    /// past returns immediately.
    fn sleep_until(&self, deadline_ns: u64);
}

/// The production clock: [`Instant`]-backed, origin = construction time.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose origin is "now".
    pub fn new() -> SystemClock {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_ns(&self) -> u64 {
        // Saturates after ~584 years of uptime; fine.
        self.origin.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }

    fn sleep_until(&self, deadline_ns: u64) {
        // One sleep for the bulk plus a short spin-free re-check loop:
        // `thread::sleep` may undershoot on some platforms, and the
        // pacing contract is "not before the deadline".
        loop {
            let now = self.now_ns();
            if now >= deadline_ns {
                return;
            }
            std::thread::sleep(Duration::from_nanos(deadline_ns - now));
        }
    }
}

/// A deterministic test clock: time only moves when the test (or a
/// `sleep_until`) moves it.
///
/// Cloning yields a handle onto the same underlying timeline, so a test
/// can hold one handle while the code under test holds another.
/// `sleep_until` jumps time straight to the deadline and records the
/// `(now_at_call, deadline)` pair, which lets tests assert on the exact
/// schedule the pacer asked for without any real waiting.
#[derive(Clone, Debug, Default)]
pub struct ManualClock {
    inner: Arc<ManualInner>,
}

#[derive(Debug, Default)]
struct ManualInner {
    now_ns: AtomicU64,
    /// Every `sleep_until` call as `(now at call, requested deadline)`,
    /// including no-op calls whose deadline had already passed.
    sleeps: Mutex<Vec<(u64, u64)>>,
}

impl ManualClock {
    /// A clock starting at `t = 0`.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Move time forward by `ns` (models external delay, e.g. a stalled
    /// consumer or a slow source pull).
    pub fn advance(&self, ns: u64) {
        self.inner.now_ns.fetch_add(ns, Ordering::SeqCst);
    }

    /// Every `sleep_until` call so far, as `(now at call, deadline)`.
    pub fn sleeps(&self) -> Vec<(u64, u64)> {
        self.inner.sleeps.lock().unwrap().clone()
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.inner.now_ns.load(Ordering::SeqCst)
    }

    fn sleep_until(&self, deadline_ns: u64) {
        let now = self.inner.now_ns.load(Ordering::SeqCst);
        self.inner.sleeps.lock().unwrap().push((now, deadline_ns));
        // Jump, don't add: a deadline in the past must not rewind time.
        self.inner.now_ns.fetch_max(deadline_ns, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_jumps_to_deadlines_and_records_sleeps() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_ns(), 0);
        clock.sleep_until(1_000);
        assert_eq!(clock.now_ns(), 1_000);
        clock.advance(5_000);
        // Past deadline: time must not rewind.
        clock.sleep_until(2_000);
        assert_eq!(clock.now_ns(), 6_000);
        assert_eq!(clock.sleeps(), vec![(0, 1_000), (6_000, 2_000)]);
    }

    #[test]
    fn system_clock_is_monotonic_and_sleeps_past_deadlines() {
        let clock = SystemClock::new();
        let a = clock.now_ns();
        let deadline = a + 2_000_000; // 2 ms
        clock.sleep_until(deadline);
        assert!(clock.now_ns() >= deadline);
    }
}
