//! Checkpoint/resume of generator progress.
//!
//! Every engine stream is a pure function of its spec and seed, so the
//! whole resumable state of a live serve is one number: the cumulative
//! **emitted-records watermark**. A checkpoint stores that watermark
//! together with the generation config, the optional scenario spec, and
//! the compression factor — enough to rebuild the identical source and
//! fast-forward past the already-served prefix. A server restarted from
//! a checkpoint therefore continues the byte stream exactly where the
//! previous incarnation stopped: concatenating the frames served before
//! the kill with the frames served after the resume reproduces the
//! batch trace byte for byte.
//!
//! Files are JSON, written atomically (temp file in the same directory,
//! then rename) so a crash mid-write leaves either the old checkpoint or
//! the new one, never a torn file. Periodic checkpoints lag the wire by
//! up to `checkpoint_every − 1` records; resuming from one replays that
//! suffix (at-least-once delivery across restarts). The final checkpoint
//! written on a graceful stop is exact (exactly-once).

use std::path::Path;

use cn_gen::GenConfig;
use cn_scenario::ScenarioSpec;
use serde::{Deserialize, Serialize};

/// A point-in-time snapshot of serve progress.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Cumulative records emitted (the resume watermark).
    pub emitted: u64,
    /// Time-compression factor the stream was served at.
    pub compression: f64,
    /// The generation config the source was built from (carries the
    /// seed, so the resumed stream is the same pure function).
    pub config: GenConfig,
    /// The scenario overlaid on the baseline, if any.
    pub scenario: Option<ScenarioSpec>,
}

/// Why a checkpoint could not be saved or loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem failure (stage: `write`, `rename`, or `read`).
    Io {
        /// The operation that failed.
        stage: &'static str,
        /// The underlying error, stringified.
        message: String,
    },
    /// The file exists but does not parse as a checkpoint.
    Parse(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io { stage, message } => {
                write!(f, "checkpoint {stage} failed: {message}")
            }
            CheckpointError::Parse(msg) => write!(f, "malformed checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl Checkpoint {
    /// Atomically persist to `path` (temp file + rename).
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let json = serde_json::to_string_pretty(self).map_err(|e| CheckpointError::Io {
            stage: "write",
            message: e.to_string(),
        })?;
        let tmp = path.with_extension("ckpt.tmp");
        std::fs::write(&tmp, json).map_err(|e| CheckpointError::Io {
            stage: "write",
            message: e.to_string(),
        })?;
        std::fs::rename(&tmp, path).map_err(|e| CheckpointError::Io {
            stage: "rename",
            message: e.to_string(),
        })
    }

    /// Load a checkpoint previously written by [`Checkpoint::save`].
    pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
        let json = std::fs::read_to_string(path).map_err(|e| CheckpointError::Io {
            stage: "read",
            message: e.to_string(),
        })?;
        serde_json::from_str(&json).map_err(|e| CheckpointError::Parse(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_trace::{PopulationMix, Timestamp};

    #[test]
    fn checkpoint_round_trips_through_disk() {
        let ckpt = Checkpoint {
            emitted: 123_456,
            compression: 3600.0,
            config: GenConfig::new(
                PopulationMix::new(10, 4, 2),
                Timestamp::at_hour(0, 9),
                1.5,
                42,
            ),
            scenario: None,
        };
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cn-live-ckpt-test-{}.json", std::process::id()));
        ckpt.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, ckpt);
    }

    #[test]
    fn missing_and_malformed_files_are_typed_errors() {
        let dir = std::env::temp_dir();
        let missing = dir.join("cn-live-ckpt-does-not-exist.json");
        assert!(matches!(
            Checkpoint::load(&missing),
            Err(CheckpointError::Io { stage: "read", .. })
        ));
        let garbled = dir.join(format!("cn-live-ckpt-garbled-{}.json", std::process::id()));
        std::fs::write(&garbled, "{not json").unwrap();
        let got = Checkpoint::load(&garbled);
        std::fs::remove_file(&garbled).ok();
        assert!(matches!(got, Err(CheckpointError::Parse(_))));
    }
}
