//! Deterministic pacing and back-pressure tests on the mock clock.
//!
//! Everything here runs without wall-clock waiting: [`ManualClock`]
//! jumps straight to requested deadlines and records the schedule, and
//! consumer stalls are modeled with a gated sink the test opens
//! explicitly. The properties under test are the live service's core
//! contracts: absolute-deadline pacing (drift is transient, never
//! accumulated), exact compression-factor scaling, and honest
//! degradation for lagged consumers (positioned gap markers plus a
//! typed [`StreamError::ConsumerLagged`] verdict — never a reordered or
//! silently truncated stream).

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use cn_gen::StreamError;
use cn_live::{capture, encode_frame, Clock, Frame, Hub, LiveConfig, LiveServer, ManualClock};
use cn_obs::Registry;
use cn_scenario::RecordSource;
use cn_trace::{DeviceType, EventType, Timestamp, TraceRecord, UeId};

fn rec(t_ms: u64, ue: u32) -> TraceRecord {
    TraceRecord::new(
        Timestamp::from_millis(t_ms),
        UeId(ue),
        DeviceType::Phone,
        EventType::ServiceRequest,
    )
}

/// A sorted in-memory record source.
struct VecSource(std::vec::IntoIter<TraceRecord>);

impl VecSource {
    fn new(records: Vec<TraceRecord>) -> VecSource {
        VecSource(records.into_iter())
    }
}

impl RecordSource for VecSource {
    fn try_next(&mut self) -> Result<Option<TraceRecord>, StreamError> {
        Ok(self.0.next())
    }
}

/// A source that stalls the (mock) world once, at a chosen pull — the
/// deterministic stand-in for a slow pull or a scheduler hiccup.
struct StutterSource {
    inner: VecSource,
    clock: ManualClock,
    stall_at_pull: usize,
    stall_ns: u64,
    pulls: usize,
}

impl RecordSource for StutterSource {
    fn try_next(&mut self) -> Result<Option<TraceRecord>, StreamError> {
        if self.pulls == self.stall_at_pull {
            self.clock.advance(self.stall_ns);
        }
        self.pulls += 1;
        self.inner.try_next()
    }
}

/// In-memory sink a test can read back after the writer thread exits.
#[derive(Clone, Default)]
struct SharedSink(Arc<Mutex<Vec<u8>>>);

impl Write for SharedSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A sink whose writes block until the test opens its gate (a consumer
/// wedged mid-`write(2)`), flagging once the writer thread reaches it.
#[derive(Clone)]
struct GatedSink {
    gate: Arc<(Mutex<bool>, Condvar)>,
    reached: Arc<AtomicBool>,
    out: SharedSink,
}

impl GatedSink {
    fn new() -> GatedSink {
        GatedSink {
            gate: Arc::new((Mutex::new(false), Condvar::new())),
            reached: Arc::new(AtomicBool::new(false)),
            out: SharedSink::default(),
        }
    }

    fn open(&self) {
        let (lock, cvar) = &*self.gate;
        *lock.lock().unwrap() = true;
        cvar.notify_all();
    }

    /// Wait (real time, bounded) until the writer thread is blocked in
    /// a write against the closed gate.
    fn await_blocked(&self) {
        for _ in 0..5_000 {
            if self.reached.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("writer never reached its first sink write");
    }
}

impl Write for GatedSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.reached.store(true, Ordering::SeqCst);
        let (lock, cvar) = &*self.gate;
        let mut open = lock.lock().unwrap();
        while !*open {
            open = cvar.wait(open).unwrap();
        }
        drop(open);
        self.out.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Emission deadlines must scale exactly with the compression factor:
/// the same trace served at 1x, 60x, and 3600x compresses its wall
/// schedule by exactly those factors.
#[test]
fn compression_factors_scale_the_wall_schedule_exactly() {
    // 3 records spaced one trace-hour apart.
    let records: Vec<TraceRecord> = (0..3).map(|i| rec(i * 3_600_000, i as u32)).collect();
    for (compression, want_step_ns) in [
        (1.0, 3_600_000_000_000u64),
        (60.0, 60_000_000_000),
        (3600.0, 1_000_000_000),
    ] {
        let clock = ManualClock::new();
        let registry = Registry::disabled();
        let server =
            LiveServer::new(clock.clone(), LiveConfig::new(compression), &registry).unwrap();
        let report = server
            .serve(VecSource::new(records.clone()), 0, None)
            .unwrap();
        assert!(report.completed);
        assert_eq!(report.served, 3);
        // The pacer anchors at the first record, so total wall time is
        // exactly two compressed steps.
        assert_eq!(
            clock.now_ns(),
            2 * want_step_ns,
            "wrong wall schedule at {compression}x"
        );
    }
}

/// A stall makes the records whose deadlines passed during it late, and
/// only those: the first record whose deadline lies beyond the stall is
/// emitted exactly on time again. (A sleep-accumulation pacer would
/// shift every subsequent record by the stall instead.)
#[test]
fn drift_is_transient_under_a_stalled_world() {
    let clock = ManualClock::new();
    let registry = Registry::new();
    let records: Vec<TraceRecord> = (0..10).map(|i| rec(i * 1_000, i as u32)).collect();
    let source = StutterSource {
        inner: VecSource::new(records),
        clock: clock.clone(),
        stall_at_pull: 3, // 5 s stall before the t=3s record
        stall_ns: 5_000_000_000,
        pulls: 0,
    };
    let server = LiveServer::new(clock.clone(), LiveConfig::new(1.0), &registry).unwrap();
    let sink = SharedSink::default();
    server.hub().add_writer(sink.clone());
    let report = server.serve(source, 0, None).unwrap();
    assert!(report.completed);

    // Records t=3..7s were overtaken by the stall (wall was at 7 s when
    // they emitted); t=8s and t=9s are on time again, so the run ends at
    // exactly the t=9s deadline — not 9s + the 5s stall.
    assert_eq!(clock.now_ns(), 9_000_000_000);
    let snapshot = registry.snapshot();
    let lag = snapshot.histogram("cn_live_lag_ms").unwrap();
    // Worst transient lag: the t=3s record emitted at wall 7s = 4000 ms
    // late. The log2 histogram's p100 upper bound must cover it without
    // extending past the next bucket (no accumulated 5s+ drift).
    let p100 = lag.quantile_upper_bound(1.0).unwrap();
    assert!(
        (4_000..8_192).contains(&p100),
        "worst lag bucket {p100} ms inconsistent with a 4 s transient"
    );
    // And the consumer still saw every record, in order, with a clean
    // End marker: pacing trouble must never corrupt the stream.
    let captured = capture(&sink.0.lock().unwrap()[..]).unwrap();
    assert_eq!(captured.records.len(), 10);
    assert!(captured.records.windows(2).all(|w| w[0] < w[1]));
    assert_eq!(captured.end, Some(10));
    assert_eq!(captured.verdict(0), Ok(()));
}

/// A consumer wedged in `write(2)` overflows its bounded queue: the
/// overflow must surface as one positioned gap marker plus the typed
/// `ConsumerLagged` verdict, while the delivered prefix stays in order
/// and untruncated.
#[test]
fn lagged_consumer_gets_a_positioned_gap_and_a_typed_verdict() {
    let registry = Registry::new();
    let hub = Hub::new(4, &registry);
    let sink = GatedSink::new();
    let id = hub.add_writer(sink.clone());
    assert_eq!(id, 0);
    // The writer sends the 16-byte header before its first queue pull;
    // once it is blocked there, the queue (capacity 4) fills and the
    // remaining broadcasts must drop.
    sink.await_blocked();
    for i in 0..10 {
        hub.broadcast(encode_frame(&Frame::Record(rec(i * 100, i as u32))));
    }
    sink.open();
    let reports = hub.finish(10);
    assert_eq!(reports.len(), 1);
    let report = reports[0].as_ref().unwrap();
    assert_eq!(report.dropped, 6);
    assert_eq!(
        report.verdict(),
        Err(StreamError::ConsumerLagged {
            consumer: 0,
            dropped: 6
        })
    );

    let captured = capture(&sink.out.0.lock().unwrap()[..]).unwrap();
    // Delivered prefix: the first 4 records, in broadcast order — then
    // the gap marker at exactly the loss position, then the End.
    let expected: Vec<TraceRecord> = (0..4).map(|i| rec(i * 100, i as u32)).collect();
    assert_eq!(captured.records, expected);
    assert_eq!(captured.gaps, vec![6]);
    assert_eq!(captured.end, Some(10));
    assert_eq!(
        captured.verdict(id),
        Err(StreamError::ConsumerLagged {
            consumer: 0,
            dropped: 6
        })
    );

    let snapshot = registry.snapshot();
    assert_eq!(snapshot.counter("cn_live_drops_total"), Some(6));
    assert_eq!(snapshot.gauge("cn_live_backlog_blocks"), Some(4));
}

/// A healthy consumer sharing the hub with a wedged one must see the
/// full stream: degradation is strictly per-consumer.
#[test]
fn a_fast_consumer_is_unaffected_by_a_lagged_one() {
    let registry = Registry::disabled();
    let hub = Hub::new(8, &registry);
    let fast = SharedSink::default();
    let fast_id = hub.add_writer(fast.clone());
    let slow = GatedSink::new();
    let slow_id = hub.add_writer(slow.clone());
    slow.await_blocked();

    // Pace broadcasts on the fast consumer's *observed* progress (its
    // writer flushes whenever its queue runs empty), so its queue depth
    // stays at 1 and it can never drop — while the wedged consumer's
    // 8-deep queue fills and then overflows deterministically.
    let total = 100u64;
    for i in 0..total {
        hub.broadcast(encode_frame(&Frame::Record(rec(i * 10, i as u32))));
        let want = 16 + (i as usize + 1) * 14;
        for _ in 0..5_000 {
            if fast.0.lock().unwrap().len() >= want {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(
            fast.0.lock().unwrap().len() >= want,
            "fast consumer stalled"
        );
    }
    slow.open();
    let reports = hub.finish(total);
    let fast_report = reports[0].as_ref().unwrap();
    let slow_report = reports[1].as_ref().unwrap();
    assert_eq!(fast_report.dropped, 0);
    assert_eq!(fast_report.verdict(), Ok(()));
    assert!(slow_report.dropped > 0);

    let captured = capture(&fast.0.lock().unwrap()[..]).unwrap();
    assert_eq!(captured.records.len(), total as usize);
    assert!(captured.records.windows(2).all(|w| w[0] < w[1]));
    assert_eq!(captured.end, Some(total));
    assert_eq!(captured.verdict(fast_id), Ok(()));

    let slow_captured = capture(&slow.out.0.lock().unwrap()[..]).unwrap();
    assert!(slow_captured.verdict(slow_id).is_err());
    // Even the lagged stream is never reordered: what was delivered is
    // a subsequence of the broadcast order.
    assert!(slow_captured.records.windows(2).all(|w| w[0] < w[1]));
    assert_eq!(
        slow_captured.records.len() as u64 + slow_captured.dropped(),
        total
    );
}
