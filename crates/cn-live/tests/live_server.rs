//! End-to-end live service tests over real sockets and real engines.
//!
//! These run at an extreme compression factor so the paced stream
//! degenerates to "as fast as possible" — the properties under test are
//! wire fidelity (the served bytes are the batch trace, byte for byte),
//! checkpoint/resume exactness, and the typed end-of-stream semantics,
//! not the wall schedule (that is `tests/pacing.rs`, on the mock
//! clock).

use std::io::Write;
use std::net::TcpStream;
use std::sync::{Arc, Mutex, OnceLock};

use cn_fit::{fit, FitConfig, Method, ModelSet};
use cn_gen::{GenConfig, ShardedStream};
use cn_live::{capture, CapturedStream, Checkpoint, LiveConfig, LiveServer, SystemClock};
use cn_obs::Registry;
use cn_scenario::{ComposedStream, PopulationSlot};
use cn_trace::{PopulationMix, Timestamp, Trace, TraceRecord};
use cn_world::{generate_world, WorldConfig};

fn models() -> &'static ModelSet {
    static MODELS: OnceLock<ModelSet> = OnceLock::new();
    MODELS.get_or_init(|| {
        let trace = generate_world(&WorldConfig::new(PopulationMix::new(16, 6, 4), 2.0, 3));
        fit(&trace, &FitConfig::new(Method::Ours))
    })
}

fn config() -> GenConfig {
    GenConfig::new(
        PopulationMix::new(10, 4, 2),
        Timestamp::at_hour(0, 9),
        1.0,
        2024,
    )
}

/// Effectively-unpaced serving: one trace hour per 3.6 wall-µs.
const FAST: f64 = 1.0e9;

#[derive(Clone, Default)]
struct SharedSink(Arc<Mutex<Vec<u8>>>);

impl Write for SharedSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn await_consumers<C: cn_live::Clock>(server: &LiveServer<C>, n: usize) {
    for _ in 0..5_000 {
        if server.hub().consumer_count() >= n {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    panic!("consumers never attached");
}

#[test]
fn tcp_consumer_receives_the_batch_trace_byte_for_byte() {
    let batch = cn_gen::generate(models(), &config());
    let registry = Registry::new();
    let server = LiveServer::new(SystemClock::new(), LiveConfig::new(FAST), &registry).unwrap();
    let addr = server.bind("127.0.0.1:0").unwrap();
    let consumer = std::thread::spawn(move || -> CapturedStream {
        let stream = TcpStream::connect(addr).expect("connect to live server");
        capture(stream).expect("drain live stream")
    });
    await_consumers(&server, 1);
    let source = ShardedStream::new(models(), &config());
    let report = server.serve(source, 0, None).unwrap();
    assert!(report.completed);
    assert_eq!(report.served as usize, batch.len());

    let captured = consumer.join().unwrap();
    let received: Trace = captured.records.iter().copied().collect();
    assert_eq!(received, batch, "live bytes diverge from the batch trace");
    assert_eq!(captured.end, Some(batch.len() as u64));
    assert_eq!(captured.verdict(0), Ok(()));
    assert_eq!(
        registry.snapshot().counter("cn_live_emitted_total"),
        Some(batch.len() as u64)
    );
    // The consumer's writer saw a healthy connection end-to-end.
    let consumer_report = report.consumers[0].as_ref().unwrap();
    assert_eq!(consumer_report.dropped, 0);
    assert_eq!(consumer_report.verdict(), Ok(()));
}

#[test]
fn stop_and_resume_reproduce_the_stream_byte_for_byte() {
    let batch = cn_gen::generate(models(), &config());
    let total = batch.len() as u64;
    let cut = total / 3;
    let ckpt_path =
        std::env::temp_dir().join(format!("cn-live-resume-test-{}.json", std::process::id()));
    let template = Checkpoint {
        emitted: 0,
        compression: FAST,
        config: config(),
        scenario: None,
    };

    // First incarnation: killed (stop_after) at the cut watermark.
    let registry = Registry::disabled();
    let mut cfg = LiveConfig::new(FAST);
    cfg.stop_after = Some(cut);
    let server = LiveServer::new(SystemClock::new(), cfg, &registry).unwrap();
    let sink1 = SharedSink::default();
    server.hub().add_writer(sink1.clone());
    let report1 = server
        .serve(
            ShardedStream::new(models(), &config()),
            0,
            Some((ckpt_path.clone(), template.clone())),
        )
        .unwrap();
    assert!(!report1.completed);
    assert_eq!(report1.emitted, cut);
    let captured1 = capture(&sink1.0.lock().unwrap()[..]).unwrap();
    // Abrupt stop: no End marker — the wire itself says "incomplete".
    assert_eq!(captured1.end, None);
    assert_eq!(captured1.records.len() as u64, cut);

    // Second incarnation: rebuilt from the checkpoint alone.
    let ckpt = Checkpoint::load(&ckpt_path).unwrap();
    assert_eq!(ckpt.emitted, cut);
    assert_eq!(ckpt.config, config());
    let server = LiveServer::new(
        SystemClock::new(),
        LiveConfig::new(ckpt.compression),
        &registry,
    )
    .unwrap();
    let sink2 = SharedSink::default();
    server.hub().add_writer(sink2.clone());
    let report2 = server
        .serve(
            ShardedStream::new(models(), &ckpt.config),
            ckpt.emitted,
            Some((ckpt_path.clone(), template)),
        )
        .unwrap();
    std::fs::remove_file(&ckpt_path).ok();
    assert!(report2.completed);
    assert_eq!(report2.skipped, cut);
    assert_eq!(report2.emitted, total);
    let captured2 = capture(&sink2.0.lock().unwrap()[..]).unwrap();
    assert_eq!(captured2.end, Some(total));

    // Concatenating both incarnations' records reproduces the batch
    // trace exactly.
    let mut joined: Vec<TraceRecord> = captured1.records;
    joined.extend_from_slice(&captured2.records);
    let joined: Trace = joined.into_iter().collect();
    assert_eq!(joined, batch, "kill/resume did not splice byte-exactly");
}

#[test]
fn composed_stream_serves_identically_to_its_batch_collection() {
    // The tentpole meets the ordering bugfix: a composition with a
    // clamping negative offset is served live and must match its batch
    // collection record for record.
    let mk = || {
        [
            PopulationSlot {
                models: models(),
                config: GenConfig::new(
                    PopulationMix::new(6, 2, 2),
                    Timestamp::at_hour(0, 9),
                    1.0,
                    7,
                ),
                offset_hours: -9.25,
            },
            PopulationSlot {
                models: models(),
                config: GenConfig::new(
                    PopulationMix::new(5, 2, 1),
                    Timestamp::at_hour(0, 9),
                    1.0,
                    8,
                ),
                offset_hours: 0.0,
            },
        ]
    };
    let batch: Vec<TraceRecord> = ComposedStream::new(&mk()).unwrap().collect();
    let registry = Registry::disabled();
    let server = LiveServer::new(SystemClock::new(), LiveConfig::new(FAST), &registry).unwrap();
    let sink = SharedSink::default();
    server.hub().add_writer(sink.clone());
    let report = server
        .serve(ComposedStream::new(&mk()).unwrap(), 0, None)
        .unwrap();
    assert!(report.completed);
    let captured = capture(&sink.0.lock().unwrap()[..]).unwrap();
    assert_eq!(captured.records, batch);
    assert_eq!(captured.verdict(0), Ok(()));
}
