//! # cellular-cp-traffgen
//!
//! Modeling and generating control-plane traffic for cellular networks —
//! a full Rust reproduction of the IMC '23 paper by Meng et al.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`trace`] — event types, UE ids, timestamps, sorted trace containers,
//!   trace I/O (CSV / JSONL / compact binary).
//! * [`stats`] — distributions + MLE fitting, K–S and Anderson–Darling
//!   tests, empirical CDFs, variance–time plots.
//! * [`statemachine`] — the 3GPP EMM/ECM machines, the paper's two-level
//!   hierarchical machine (Fig. 5), the 5G SA machine (Fig. 6), and the
//!   replay engine.
//! * [`cluster`] — the adaptive quadtree UE-clustering scheme (§5.3).
//! * [`world`] — the mechanistic ground-truth simulator standing in for
//!   the proprietary carrier trace.
//! * [`fit_crate`] (exported as `fit_crate`) — the fitting pipeline: per-(cluster, hour, device)
//!   Semi-Markov models, first-event models, the Base/B1/B2/Ours method
//!   matrix (Table 3).
//! * [`gen`] — the scalable per-UE trace generator (§7).
//! * [`fiveg`] — the 5G NSA/SA adaptation (§6, Table 2).
//! * [`eval`] — the evaluation harness reproducing every paper table and
//!   figure.
//! * [`mcn`] — a miniature MME-style core-network consumer (per-UE state
//!   tables + queueing model), the paper's motivating use case.
//! * [`obs`] — the zero-dependency metrics/tracing layer every pipeline
//!   stage reports through (counters, gauges, log2 histograms, spans,
//!   Prometheus/JSON export).
//!
//! ## Quickstart
//!
//! ```
//! use cellular_cp_traffgen::prelude::*;
//!
//! // 1. A ground-truth "carrier" trace (stand-in for the paper's data).
//! let world = generate_world(&WorldConfig::new(PopulationMix::new(30, 10, 5), 1.0, 7));
//!
//! // 2. Fit the paper's model: two-level Semi-Markov + clustering + CDFs.
//! let models = fit(&world, &FitConfig::new(Method::Ours));
//!
//! // 3. Synthesize a busy-hour trace for a *different* population size.
//! let config = GenConfig::new(
//!     PopulationMix::new(60, 20, 10),
//!     Timestamp::at_hour(0, 18),
//!     1.0,
//!     42,
//! );
//! let synthetic = generate(&models, &config);
//!
//! // Every event is labeled with its originating UE and is protocol-
//! // conformant, so it can drive per-UE core-network state.
//! for ue_events in synthetic.per_ue().iter().take(3) {
//!     let outcome = cn_statemachine::replay_ue(ue_events.1);
//!     assert!(outcome.is_conformant());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cn_cluster as cluster;
pub use cn_eval as eval;
pub use cn_fit as fit_crate;
pub use cn_fivegee as fiveg;
pub use cn_gen as gen;
pub use cn_live as live;
pub use cn_mcn as mcn;
pub use cn_obs as obs;
pub use cn_scenario as scenario;
pub use cn_statemachine as statemachine;
pub use cn_stats as stats;
pub use cn_trace as trace;
pub use cn_world as world;

/// The most common imports, for examples and downstream users.
pub mod prelude {
    pub use cn_eval::{ExperimentConfig, Lab};
    pub use cn_fit::{fit, FitConfig, Method, ModelSet};
    pub use cn_fivegee::{adapt_model, ScalingProfile};
    pub use cn_gen::{generate, GenConfig};
    pub use cn_mcn::{Mme, QueueSim, ServiceProfile};
    pub use cn_trace::{DeviceType, EventType, PopulationMix, Timestamp, Trace, TraceRecord, UeId};
    pub use cn_world::{generate_world, WorldConfig};
}
